//! The ask–tell tuner interface.
//!
//! Active Harmony separates *what to try next* (the tuning algorithm) from
//! *how performance is measured* (the instrumented system). A [`Tuner`]
//! proposes one configuration per tuning iteration; the harness applies it,
//! runs an iteration, and reports the observed performance back. Higher
//! performance is better (WIPS in this paper).

use crate::space::{Configuration, ParamSpace};
use persist::{PersistError, State};

/// One proposed evaluation in a batch: a configuration tagged with an
/// identifier unique among the batch's outstanding trials, so results
/// can be reported back in any order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trial {
    pub id: u64,
    pub config: Configuration,
}

impl Trial {
    pub fn new(id: u64, config: Configuration) -> Self {
        Trial { id, config }
    }
}

/// A typed performance observation: the measured mean plus how much the
/// measurement itself can be trusted. The bare-`f64` protocol collapses
/// this to `mean` alone; noise-aware tuners (TUNA) weight observations
/// by the interval width and replication count instead of taking every
/// sample at face value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Measured performance (higher = better; WIPS in this paper).
    pub mean: f64,
    /// 95% confidence half-width of the measurement (0 = exact).
    pub ci_half_width: f64,
    /// Independent replications folded into `mean` (>= 1).
    pub replications: u32,
}

impl Measurement {
    /// An exact observation: a single sample taken at face value.
    pub fn point(mean: f64) -> Self {
        Measurement {
            mean,
            ci_half_width: 0.0,
            replications: 1,
        }
    }

    /// Builder: attach a 95% confidence half-width.
    pub fn with_ci(mut self, ci_half_width: f64) -> Self {
        self.ci_half_width = ci_half_width;
        self
    }

    /// Builder: set the replication count (clamped to >= 1).
    pub fn with_replications(mut self, replications: u32) -> Self {
        self.replications = replications.max(1);
        self
    }

    /// Half-width relative to the mean's magnitude (0 when the mean is 0).
    pub fn relative_ci(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            (self.ci_half_width / self.mean).abs()
        }
    }
}

/// A tuning algorithm driven in strict propose → observe alternation.
///
/// The v2 protocol extends the original one-`f64`-per-`propose` loop in
/// two backward-compatible directions: [`Tuner::propose_batch`] lets an
/// algorithm hand out a whole round of trial-tagged configurations at
/// once, and [`Tuner::observe_measurement`] carries a typed
/// [`Measurement`] instead of a bare mean. Implementors only provide
/// `propose`/`observe`; every v2 entry point has a default that reduces
/// to the strict alternating protocol.
pub trait Tuner {
    /// The space this tuner explores.
    fn space(&self) -> &ParamSpace;

    /// Propose the next configuration to evaluate.
    ///
    /// Must be followed by exactly one [`Tuner::observe`] call before the
    /// next `propose`.
    fn propose(&mut self) -> Configuration;

    /// Report the performance (higher = better) of the configuration from
    /// the immediately preceding [`Tuner::propose`].
    fn observe(&mut self, performance: f64);

    /// Best configuration seen so far, with its performance.
    fn best(&self) -> Option<(&Configuration, f64)>;

    /// Number of observations so far.
    fn evaluations(&self) -> u64;

    /// Short algorithm name (reports).
    fn name(&self) -> &'static str;

    /// Propose a whole round of trials at once. Batch-native algorithms
    /// (BestConfig's divide-and-diverge rounds, ClassyTune's candidate
    /// sets) override this to hand out every planned evaluation of the
    /// round; each trial must then receive exactly one
    /// [`Tuner::observe_trial`] call (any order) before the next batch.
    /// The default is a one-element batch wrapping [`Tuner::propose`].
    fn propose_batch(&mut self) -> Vec<Trial> {
        let id = self.evaluations();
        vec![Trial::new(id, self.propose())]
    }

    /// Report the measurement of one trial from the current batch. The
    /// default ignores the id (a one-element default batch is implicitly
    /// ordered) and forwards to [`Tuner::observe_measurement`].
    fn observe_trial(&mut self, trial_id: u64, m: Measurement) {
        let _ = trial_id;
        self.observe_measurement(m);
    }

    /// Report a typed [`Measurement`] for the pending proposal. The
    /// default collapses it to the mean — algorithms that never look at
    /// measurement uncertainty behave identically under both protocols.
    fn observe_measurement(&mut self, m: Measurement) {
        self.observe(m.mean);
    }

    /// Number of trials in the tuner's current planning round — what
    /// [`Tuner::propose_batch`] would hand out next. Strictly
    /// alternating tuners report 1.
    fn batch_size(&self) -> usize {
        1
    }

    /// Ask for the next configuration — alias for [`Tuner::propose`] in
    /// the ask/tell vocabulary used by the optimisation literature.
    fn ask(&mut self) -> Configuration {
        self.propose()
    }

    /// Tell the tuner a typed observation — alias for
    /// [`Tuner::observe_measurement`] in the ask/tell vocabulary.
    fn tell_measurement(&mut self, m: Measurement) {
        self.observe_measurement(m);
    }

    /// Tell the tuner the observed performance — kept as a shim over the
    /// typed [`Tuner::tell_measurement`] for pre-v2 callers.
    #[deprecated(note = "use `tell_measurement` (typed) or `observe`")]
    fn tell(&mut self, performance: f64) {
        self.tell_measurement(Measurement::point(performance));
    }

    /// Forget search state (simplex geometry, step sizes, cursor
    /// position) but keep the parameter space, so the tuner can restart
    /// cleanly after a workload change instead of being rebuilt by hand.
    /// The default is a no-op: memoryless tuners are already reset.
    fn reset(&mut self) {}

    /// Per-iteration internal state worth tracing (e.g. the simplex
    /// vertex spread), as ordered name/value pairs. Default: none.
    fn diagnostics(&self) -> Vec<(&'static str, f64)> {
        Vec::new()
    }

    /// Configurations this tuner *may* propose over its next few
    /// [`Tuner::propose`] calls: element `k` of the outer vector lists
    /// candidates for the proposal `k` calls ahead (0 = the very next
    /// one). Purely advisory — a harness can evaluate candidates
    /// speculatively in parallel and serve the real proposals from a
    /// cache; wrong or missing guesses cost only wasted background
    /// work, never correctness. Must not be called while a proposal is
    /// outstanding. The default sees nothing ahead.
    fn speculate(&self) -> Vec<Vec<Configuration>> {
        Vec::new()
    }

    /// Export the tuner's full search state for checkpointing (object-
    /// safe mirror of `persist::Checkpointable`). The default returns
    /// [`State::Null`], meaning "nothing to save" — tuners that support
    /// crash-safe resume override both this and
    /// [`Tuner::restore_state`].
    fn save_state(&self) -> State {
        State::Null
    }

    /// Restore search state saved by [`Tuner::save_state`]. The default
    /// rejects restoration so a resumed session fails loudly instead of
    /// silently restarting a tuner from scratch.
    fn restore_state(&mut self, _state: &State) -> Result<(), PersistError> {
        Err(PersistError::Unsupported(self.name().to_string()))
    }
}

/// Shared best-seen bookkeeping for tuner implementations.
#[derive(Debug, Clone, Default)]
pub(crate) struct BestTracker {
    best: Option<(Configuration, f64)>,
    evaluations: u64,
}

impl BestTracker {
    pub fn record(&mut self, config: &Configuration, perf: f64) {
        self.evaluations += 1;
        let improved = match &self.best {
            Some((_, p)) => perf > *p,
            None => true,
        };
        if improved {
            self.best = Some((config.clone(), perf));
        }
    }

    pub fn best(&self) -> Option<(&Configuration, f64)> {
        self.best.as_ref().map(|(c, p)| (c, *p))
    }

    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Export for checkpointing.
    pub(crate) fn save_state(&self) -> State {
        let best = match &self.best {
            Some((config, perf)) => State::map()
                .with("values", State::i64_list(config.values()))
                .with("perf", State::F64(*perf)),
            None => State::Null,
        };
        State::map()
            .with("best", best)
            .with("evaluations", State::U64(self.evaluations))
    }

    /// Restore from [`BestTracker::save_state`] output.
    pub(crate) fn restore_state(&mut self, state: &State) -> Result<(), PersistError> {
        self.best = match state.require("best")? {
            State::Null => None,
            best => Some((
                Configuration::from_values(best.require("values")?.to_i64_vec()?),
                best.field_f64("perf")?,
            )),
        };
        self.evaluations = state.field_u64("evaluations")?;
        Ok(())
    }
}

/// Serialise an RNG's full state (shared by the seeded tuners'
/// checkpoint paths — resume must continue the exact random sequence).
pub(crate) fn rng_state(rng: &simkit::rng::SimRng) -> State {
    State::List(rng.state().iter().map(|&w| State::U64(w)).collect())
}

/// Rebuild an RNG from [`rng_state`] output.
pub(crate) fn rng_from_state(state: &State) -> Result<simkit::rng::SimRng, PersistError> {
    let words = state
        .as_list()
        .ok_or_else(|| PersistError::Schema("rng state is not a list".into()))?;
    if words.len() != 4 {
        return Err(PersistError::Schema(format!(
            "rng state has {} words, expected 4",
            words.len()
        )));
    }
    let mut s = [0u64; 4];
    for (slot, w) in s.iter_mut().zip(words) {
        *slot = w
            .as_u64()
            .ok_or_else(|| PersistError::Schema("rng word is not a u64".into()))?;
    }
    Ok(simkit::rng::SimRng::from_state(s))
}

/// `Option<Configuration>` as state (Null = None).
pub(crate) fn opt_config_state(config: &Option<Configuration>) -> State {
    match config {
        Some(c) => State::i64_list(c.values()),
        None => State::Null,
    }
}

/// Restore [`opt_config_state`] output.
pub(crate) fn opt_config_from_state(state: &State) -> Result<Option<Configuration>, PersistError> {
    match state {
        State::Null => Ok(None),
        values => Ok(Some(Configuration::from_values(values.to_i64_vec()?))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_tracker_keeps_maximum() {
        let mut t = BestTracker::default();
        assert!(t.best().is_none());
        let a = Configuration::from_values(vec![1]);
        let b = Configuration::from_values(vec![2]);
        let c = Configuration::from_values(vec![3]);
        t.record(&a, 10.0);
        t.record(&b, 30.0);
        t.record(&c, 20.0);
        let (cfg, perf) = t.best().unwrap();
        assert_eq!(cfg.values(), &[2]);
        assert_eq!(perf, 30.0);
        assert_eq!(t.evaluations(), 3);
    }

    #[test]
    fn ties_keep_first() {
        let mut t = BestTracker::default();
        let a = Configuration::from_values(vec![1]);
        let b = Configuration::from_values(vec![2]);
        t.record(&a, 10.0);
        t.record(&b, 10.0);
        assert_eq!(t.best().unwrap().0.values(), &[1]);
    }

    #[test]
    fn measurement_builders_and_relative_ci() {
        let m = Measurement::point(200.0);
        assert_eq!(m.ci_half_width, 0.0);
        assert_eq!(m.replications, 1);
        let m = m.with_ci(10.0).with_replications(3);
        assert_eq!(m.relative_ci(), 0.05);
        assert_eq!(m.replications, 3);
        assert_eq!(Measurement::point(0.0).with_ci(5.0).relative_ci(), 0.0);
        assert_eq!(Measurement::point(1.0).with_replications(0).replications, 1);
    }

    /// Minimal strict-alternation tuner to exercise the v2 defaults.
    struct Probe {
        space: ParamSpace,
        pending: bool,
        tracker: BestTracker,
        last_observed: Option<f64>,
    }

    impl Tuner for Probe {
        fn space(&self) -> &ParamSpace {
            &self.space
        }
        fn propose(&mut self) -> Configuration {
            assert!(!self.pending, "propose() twice without observe()");
            self.pending = true;
            self.space.default_config()
        }
        fn observe(&mut self, performance: f64) {
            assert!(self.pending, "observe() without propose()");
            self.pending = false;
            self.last_observed = Some(performance);
            self.tracker
                .record(&self.space.default_config(), performance);
        }
        fn best(&self) -> Option<(&Configuration, f64)> {
            self.tracker.best()
        }
        fn evaluations(&self) -> u64 {
            self.tracker.evaluations()
        }
        fn name(&self) -> &'static str {
            "probe"
        }
    }

    fn probe() -> Probe {
        use crate::param::ParamDef;
        Probe {
            space: ParamSpace::new(vec![ParamDef::new("x", 0, 10, 5)]),
            pending: false,
            tracker: BestTracker::default(),
            last_observed: None,
        }
    }

    #[test]
    fn default_batch_wraps_propose() {
        let mut t = probe();
        assert_eq!(t.batch_size(), 1);
        let batch = t.propose_batch();
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].id, 0);
        assert_eq!(batch[0].config, t.space().default_config());
        t.observe_trial(batch[0].id, Measurement::point(7.0).with_ci(1.0));
        assert_eq!(t.last_observed, Some(7.0));
        assert_eq!(t.evaluations(), 1);
        // The next default batch carries a fresh id.
        assert_eq!(t.propose_batch()[0].id, 1);
    }

    #[test]
    fn deprecated_tell_routes_through_the_typed_path() {
        let mut t = probe();
        let _ = t.ask();
        #[allow(deprecated)]
        t.tell(3.5);
        assert_eq!(t.last_observed, Some(3.5));
        let _ = t.ask();
        t.tell_measurement(Measurement::point(4.5).with_replications(2));
        assert_eq!(t.last_observed, Some(4.5));
    }
}
