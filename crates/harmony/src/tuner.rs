//! The ask–tell tuner interface.
//!
//! Active Harmony separates *what to try next* (the tuning algorithm) from
//! *how performance is measured* (the instrumented system). A [`Tuner`]
//! proposes one configuration per tuning iteration; the harness applies it,
//! runs an iteration, and reports the observed performance back. Higher
//! performance is better (WIPS in this paper).

use crate::space::{Configuration, ParamSpace};
use persist::{PersistError, State};

/// A tuning algorithm driven in strict propose → observe alternation.
pub trait Tuner {
    /// The space this tuner explores.
    fn space(&self) -> &ParamSpace;

    /// Propose the next configuration to evaluate.
    ///
    /// Must be followed by exactly one [`Tuner::observe`] call before the
    /// next `propose`.
    fn propose(&mut self) -> Configuration;

    /// Report the performance (higher = better) of the configuration from
    /// the immediately preceding [`Tuner::propose`].
    fn observe(&mut self, performance: f64);

    /// Best configuration seen so far, with its performance.
    fn best(&self) -> Option<(&Configuration, f64)>;

    /// Number of observations so far.
    fn evaluations(&self) -> u64;

    /// Short algorithm name (reports).
    fn name(&self) -> &'static str;

    /// Ask for the next configuration — alias for [`Tuner::propose`] in
    /// the ask/tell vocabulary used by the optimisation literature.
    fn ask(&mut self) -> Configuration {
        self.propose()
    }

    /// Tell the tuner the observed performance — alias for
    /// [`Tuner::observe`].
    fn tell(&mut self, performance: f64) {
        self.observe(performance)
    }

    /// Forget search state (simplex geometry, step sizes, cursor
    /// position) but keep the parameter space, so the tuner can restart
    /// cleanly after a workload change instead of being rebuilt by hand.
    /// The default is a no-op: memoryless tuners are already reset.
    fn reset(&mut self) {}

    /// Per-iteration internal state worth tracing (e.g. the simplex
    /// vertex spread), as ordered name/value pairs. Default: none.
    fn diagnostics(&self) -> Vec<(&'static str, f64)> {
        Vec::new()
    }

    /// Configurations this tuner *may* propose over its next few
    /// [`Tuner::propose`] calls: element `k` of the outer vector lists
    /// candidates for the proposal `k` calls ahead (0 = the very next
    /// one). Purely advisory — a harness can evaluate candidates
    /// speculatively in parallel and serve the real proposals from a
    /// cache; wrong or missing guesses cost only wasted background
    /// work, never correctness. Must not be called while a proposal is
    /// outstanding. The default sees nothing ahead.
    fn speculate(&self) -> Vec<Vec<Configuration>> {
        Vec::new()
    }

    /// Export the tuner's full search state for checkpointing (object-
    /// safe mirror of `persist::Checkpointable`). The default returns
    /// [`State::Null`], meaning "nothing to save" — tuners that support
    /// crash-safe resume override both this and
    /// [`Tuner::restore_state`].
    fn save_state(&self) -> State {
        State::Null
    }

    /// Restore search state saved by [`Tuner::save_state`]. The default
    /// rejects restoration so a resumed session fails loudly instead of
    /// silently restarting a tuner from scratch.
    fn restore_state(&mut self, _state: &State) -> Result<(), PersistError> {
        Err(PersistError::Unsupported(self.name().to_string()))
    }
}

/// Shared best-seen bookkeeping for tuner implementations.
#[derive(Debug, Clone, Default)]
pub(crate) struct BestTracker {
    best: Option<(Configuration, f64)>,
    evaluations: u64,
}

impl BestTracker {
    pub fn record(&mut self, config: &Configuration, perf: f64) {
        self.evaluations += 1;
        let improved = match &self.best {
            Some((_, p)) => perf > *p,
            None => true,
        };
        if improved {
            self.best = Some((config.clone(), perf));
        }
    }

    pub fn best(&self) -> Option<(&Configuration, f64)> {
        self.best.as_ref().map(|(c, p)| (c, *p))
    }

    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Export for checkpointing.
    pub(crate) fn save_state(&self) -> State {
        let best = match &self.best {
            Some((config, perf)) => State::map()
                .with("values", State::i64_list(config.values()))
                .with("perf", State::F64(*perf)),
            None => State::Null,
        };
        State::map()
            .with("best", best)
            .with("evaluations", State::U64(self.evaluations))
    }

    /// Restore from [`BestTracker::save_state`] output.
    pub(crate) fn restore_state(&mut self, state: &State) -> Result<(), PersistError> {
        self.best = match state.require("best")? {
            State::Null => None,
            best => Some((
                Configuration::from_values(best.require("values")?.to_i64_vec()?),
                best.field_f64("perf")?,
            )),
        };
        self.evaluations = state.field_u64("evaluations")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_tracker_keeps_maximum() {
        let mut t = BestTracker::default();
        assert!(t.best().is_none());
        let a = Configuration::from_values(vec![1]);
        let b = Configuration::from_values(vec![2]);
        let c = Configuration::from_values(vec![3]);
        t.record(&a, 10.0);
        t.record(&b, 30.0);
        t.record(&c, 20.0);
        let (cfg, perf) = t.best().unwrap();
        assert_eq!(cfg.values(), &[2]);
        assert_eq!(perf, 30.0);
        assert_eq!(t.evaluations(), 3);
    }

    #[test]
    fn ties_keep_first() {
        let mut t = BestTracker::default();
        let a = Configuration::from_values(vec![1]);
        let b = Configuration::from_values(vec![2]);
        t.record(&a, 10.0);
        t.record(&b, 10.0);
        assert_eq!(t.best().unwrap().0.values(), &[1]);
    }
}
