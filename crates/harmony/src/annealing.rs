//! Simulated-annealing tuner.
//!
//! The paper's related work (Nimrod/O) applies simulated annealing to
//! design search; this implementation provides the comparison point for
//! the ablation benches: a single-point stochastic search with a
//! geometric cooling schedule and span-proportional neighbourhood moves.

use crate::space::{Configuration, ParamSpace};
use crate::tuner::{
    opt_config_from_state, opt_config_state, rng_from_state, rng_state, BestTracker, Tuner,
};
use persist::{Checkpointable, PersistError, State};
use simkit::rng::SimRng;

/// Simulated annealing over a bounded integer space (ask–tell).
#[derive(Debug, Clone)]
pub struct SimulatedAnnealing {
    space: ParamSpace,
    rng: SimRng,
    seed: u64,
    /// Current accepted point and its performance.
    current: Configuration,
    current_perf: Option<f64>,
    /// Temperature in performance units; `None` until calibrated from the
    /// first observation.
    temperature: Option<f64>,
    /// Geometric cooling factor per observation.
    cooling: f64,
    /// Neighbourhood size as a fraction of each dimension's span.
    reach: f64,
    pending: Option<Configuration>,
    tracker: BestTracker,
    accepted: u64,
}

impl SimulatedAnnealing {
    pub fn new(space: ParamSpace, seed: u64) -> Self {
        let current = space.default_config();
        SimulatedAnnealing {
            space,
            rng: SimRng::new(seed),
            seed,
            current,
            current_perf: None,
            temperature: None,
            cooling: 0.97,
            reach: 0.25,
            pending: None,
            tracker: BestTracker::default(),
            accepted: 0,
        }
    }

    /// Override the cooling factor (0 < c < 1; closer to 1 cools slower).
    pub fn with_cooling(mut self, cooling: f64) -> Self {
        assert!(cooling > 0.0 && cooling < 1.0);
        self.cooling = cooling;
        self
    }

    /// Moves accepted so far (diagnostics).
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    fn neighbour(&mut self) -> Configuration {
        let mut c = self.current.clone();
        // Perturb a random subset (at least one dimension).
        let dims = self.space.dims();
        let k = 1 + self.rng.next_below(dims.min(3) as u64) as usize;
        for _ in 0..k {
            let dim = self.rng.next_below(dims as u64) as usize;
            let def = self.space.def(dim);
            let span = (def.span() as f64 * self.reach).max(1.0);
            let delta = self.rng.normal(0.0, span / 2.0).round() as i64;
            c.set(dim, def.clamp(c.get(dim) + delta));
        }
        c
    }
}

impl Tuner for SimulatedAnnealing {
    fn space(&self) -> &ParamSpace {
        &self.space
    }

    fn propose(&mut self) -> Configuration {
        assert!(self.pending.is_none(), "propose() twice without observe()");
        let config = if self.current_perf.is_none() {
            self.current.clone()
        } else {
            self.neighbour()
        };
        self.pending = Some(config.clone());
        config
    }

    fn observe(&mut self, performance: f64) {
        let Some(config) = self.pending.take() else {
            panic!("observe() without propose()");
        };
        self.tracker.record(&config, performance);
        match self.current_perf {
            None => {
                // First observation: calibrate the temperature to a tenth
                // of the observed magnitude (scale-free start).
                self.temperature = Some((performance.abs() * 0.1).max(1e-6));
                self.current_perf = Some(performance);
            }
            Some(current) => {
                let Some(t) = self.temperature else {
                    unreachable!("temperature calibrated on first observation")
                };
                let delta = performance - current;
                let accept = delta >= 0.0 || {
                    let p = (delta / t).exp();
                    self.rng.chance(p)
                };
                if accept {
                    self.current = config;
                    self.current_perf = Some(performance);
                    self.accepted += 1;
                }
                self.temperature = Some((t * self.cooling).max(1e-9));
            }
        }
    }

    fn best(&self) -> Option<(&Configuration, f64)> {
        self.tracker.best()
    }

    fn evaluations(&self) -> u64 {
        self.tracker.evaluations()
    }

    fn name(&self) -> &'static str {
        "annealing"
    }

    fn reset(&mut self) {
        *self = SimulatedAnnealing::new(self.space.clone(), self.seed).with_cooling(self.cooling);
    }

    fn diagnostics(&self) -> Vec<(&'static str, f64)> {
        vec![
            ("accepted", self.accepted as f64),
            ("temperature", self.temperature.unwrap_or(0.0)),
        ]
    }

    fn save_state(&self) -> State {
        Checkpointable::save_state(self)
    }

    fn restore_state(&mut self, state: &State) -> Result<(), PersistError> {
        Checkpointable::restore_state(self, state)
    }
}

impl Checkpointable for SimulatedAnnealing {
    fn save_state(&self) -> State {
        State::map()
            .with("algorithm", State::Str(self.name().to_string()))
            .with("seed", State::U64(self.seed))
            .with("current", State::i64_list(self.current.values()))
            .with(
                "current_perf",
                match self.current_perf {
                    Some(p) => State::F64(p),
                    None => State::Null,
                },
            )
            .with(
                "temperature",
                match self.temperature {
                    Some(t) => State::F64(t),
                    None => State::Null,
                },
            )
            .with("cooling", State::F64(self.cooling))
            .with("reach", State::F64(self.reach))
            .with("pending", opt_config_state(&self.pending))
            .with("accepted", State::U64(self.accepted))
            .with("rng", rng_state(&self.rng))
            .with("tracker", self.tracker.save_state())
    }

    fn restore_state(&mut self, state: &State) -> Result<(), PersistError> {
        let current = Configuration::from_values(state.require("current")?.to_i64_vec()?);
        if current.values().len() != self.space.dims() {
            return Err(PersistError::Schema(format!(
                "annealing current has {} dims, space has {}",
                current.values().len(),
                self.space.dims()
            )));
        }
        self.current = current;
        self.seed = state.field_u64("seed")?;
        self.current_perf = match state.require("current_perf")? {
            State::Null => None,
            s => Some(s.as_f64().ok_or_else(|| {
                PersistError::Schema("field 'current_perf' is not an f64".into())
            })?),
        };
        self.temperature =
            match state.require("temperature")? {
                State::Null => None,
                s => Some(s.as_f64().ok_or_else(|| {
                    PersistError::Schema("field 'temperature' is not an f64".into())
                })?),
            };
        self.cooling = state.field_f64("cooling")?;
        self.reach = state.field_f64("reach")?;
        self.pending = opt_config_from_state(state.require("pending")?)?;
        self.accepted = state.field_u64("accepted")?;
        self.rng = rng_from_state(state.require("rng")?)?;
        self.tracker.restore_state(state.require("tracker")?)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::ParamDef;

    fn space() -> ParamSpace {
        ParamSpace::new(vec![
            ParamDef::new("x", 0, 200, 20),
            ParamDef::new("y", 0, 200, 180),
        ])
    }

    fn objective(v: &[i64]) -> f64 {
        let dx = v[0] as f64 - 130.0;
        let dy = v[1] as f64 - 60.0;
        -(dx * dx + dy * dy)
    }

    #[test]
    fn improves_on_quadratic() {
        let mut t = SimulatedAnnealing::new(space(), 42);
        let mut first = None;
        for _ in 0..300 {
            let c = t.propose();
            let p = objective(c.values());
            if first.is_none() {
                first = Some(p);
            }
            t.observe(p);
        }
        let (best, perf) = t.best().unwrap();
        assert!(perf > first.unwrap(), "never improved");
        let dist = (((best.get(0) - 130).pow(2) + (best.get(1) - 60).pow(2)) as f64).sqrt();
        assert!(dist < 40.0, "best {best} too far");
        assert!(t.accepted() > 0);
    }

    #[test]
    fn always_in_bounds() {
        let s = space();
        let mut t = SimulatedAnnealing::new(s.clone(), 7);
        for i in 0..200 {
            let c = t.propose();
            assert!(s.validate(&c).is_ok(), "iteration {i}: {c}");
            t.observe((i % 17) as f64);
        }
    }

    #[test]
    fn cooling_reduces_uphill_acceptance() {
        // With a fast-cooled schedule, late bad moves are rejected: the
        // current point stops moving downhill.
        let mut t = SimulatedAnnealing::new(space(), 3).with_cooling(0.5);
        // Feed alternating good/bad scores; after cooling, bad proposals
        // should almost never be accepted.
        for i in 0..50 {
            let _ = t.propose();
            t.observe(if i % 2 == 0 { 100.0 } else { -1e6 });
        }
        let early_accepted = t.accepted();
        let before = t.accepted();
        for _ in 0..50 {
            let _ = t.propose();
            t.observe(-1e6);
        }
        let late_accepted = t.accepted() - before;
        assert!(
            late_accepted <= 2,
            "late bad moves accepted {late_accepted}"
        );
        assert!(early_accepted >= 1);
    }

    #[test]
    fn evaluates_default_first() {
        let s = space();
        let mut t = SimulatedAnnealing::new(s.clone(), 1);
        assert_eq!(t.propose(), s.default_config());
    }

    #[test]
    #[should_panic(expected = "propose() twice")]
    fn double_propose_panics() {
        let mut t = SimulatedAnnealing::new(space(), 1);
        t.propose();
        t.propose();
    }
}
