//! Tunable-parameter definitions.
//!
//! Active Harmony treats each tunable parameter as one dimension of a
//! bounded integer search space. Applications register parameters with a
//! name, an inclusive `[min, max]` range, and a default (starting) value.

use std::fmt;

/// One tunable parameter: a bounded integer dimension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamDef {
    /// Human-readable name, e.g. `"proxy0.cache_mem"`.
    pub name: String,
    /// Inclusive lower bound.
    pub min: i64,
    /// Inclusive upper bound.
    pub max: i64,
    /// Starting value (the system's default configuration).
    pub default: i64,
}

impl ParamDef {
    /// Create a definition; panics if the range is empty or the default
    /// falls outside it (programming error, not runtime input).
    pub fn new(name: impl Into<String>, min: i64, max: i64, default: i64) -> Self {
        let name = name.into();
        assert!(min <= max, "{name}: empty range [{min}, {max}]");
        assert!(
            (min..=max).contains(&default),
            "{name}: default {default} outside [{min}, {max}]"
        );
        ParamDef {
            name,
            min,
            max,
            default,
        }
    }

    /// Width of the range (number of representable steps).
    pub fn span(&self) -> i64 {
        self.max - self.min
    }

    /// Clamp a raw value into range.
    pub fn clamp(&self, v: i64) -> i64 {
        v.clamp(self.min, self.max)
    }

    /// Clamp a continuous value and round to the nearest integer in range.
    /// This is the paper's adaptation of Nelder–Mead to a discrete space:
    /// "using the resulting values from the nearest integer point".
    pub fn project(&self, v: f64) -> i64 {
        if v.is_nan() {
            return self.default;
        }
        let r = v.round();
        if r <= self.min as f64 {
            self.min
        } else if r >= self.max as f64 {
            self.max
        } else {
            r as i64
        }
    }

    /// True if `v` lies in range.
    pub fn contains(&self, v: i64) -> bool {
        (self.min..=self.max).contains(&v)
    }
}

impl fmt::Display for ParamDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ∈ [{}, {}] (default {})",
            self.name, self.min, self.max, self.default
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let p = ParamDef::new("cache_mem", 1, 64, 8);
        assert_eq!(p.span(), 63);
        assert!(p.contains(1) && p.contains(64) && !p.contains(0));
        assert_eq!(format!("{p}"), "cache_mem ∈ [1, 64] (default 8)");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        ParamDef::new("x", 5, 4, 5);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn default_out_of_range_panics() {
        ParamDef::new("x", 0, 10, 11);
    }

    #[test]
    fn clamp_and_project() {
        let p = ParamDef::new("x", -10, 10, 0);
        assert_eq!(p.clamp(-100), -10);
        assert_eq!(p.clamp(100), 10);
        assert_eq!(p.project(3.4), 3);
        assert_eq!(p.project(3.6), 4);
        assert_eq!(p.project(-3.5), -4); // f64::round: away from zero
        assert_eq!(p.project(1e18), 10);
        assert_eq!(p.project(-1e18), -10);
        assert_eq!(p.project(f64::NAN), 0);
    }

    #[test]
    fn degenerate_single_point_range() {
        let p = ParamDef::new("fixed", 7, 7, 7);
        assert_eq!(p.span(), 0);
        assert_eq!(p.project(123.0), 7);
    }
}
