//! White-box tests of the Nelder–Mead step semantics (the Figure 3
//! outcomes: reflection, expansion, contraction, multiple contraction).

use harmony::param::ParamDef;
use harmony::simplex::SimplexTuner;
use harmony::space::{Configuration, ParamSpace};
use harmony::tuner::Tuner;

fn space_2d() -> ParamSpace {
    ParamSpace::new(vec![
        ParamDef::new("x", -1_000, 1_000, 0),
        ParamDef::new("y", -1_000, 1_000, 0),
    ])
}

fn drive(
    tuner: &mut SimplexTuner,
    f: impl Fn(&Configuration) -> f64,
    n: usize,
) -> Vec<Configuration> {
    let mut proposals = Vec::with_capacity(n);
    for _ in 0..n {
        let c = tuner.propose();
        let p = f(&c);
        proposals.push(c);
        tuner.observe(p);
    }
    proposals
}

#[test]
fn expansion_accelerates_along_a_gradient() {
    // Linear objective: the simplex should expand along +x, covering
    // exponentially growing distance rather than fixed steps.
    let mut t = SimplexTuner::new(space_2d());
    let proposals = drive(&mut t, |c| c.get(0) as f64, 40);
    let max_x = proposals.iter().map(|c| c.get(0)).max().unwrap();
    // Initial step is 25% of span (=500); pure reflection without
    // expansion would crawl in +500 increments. Reaching the +1000 bound
    // within 40 evaluations requires expansion to have fired.
    assert_eq!(max_x, 1_000, "never reached the boundary: {max_x}");
    let (best, _) = t.best().unwrap();
    assert_eq!(best.get(0), 1_000);
}

#[test]
fn contraction_pulls_toward_an_interior_optimum() {
    // Optimum exactly at the default: after the initial simplex, every
    // accepted move should shrink toward the centre.
    let mut t = SimplexTuner::new(space_2d());
    let f = |c: &Configuration| -((c.get(0).abs() + c.get(1).abs()) as f64);
    let proposals = drive(&mut t, f, 60);
    // Average distance of the last ten proposals is far below the initial
    // step size.
    let tail: f64 = proposals[proposals.len() - 10..]
        .iter()
        .map(|c| (c.get(0).abs() + c.get(1).abs()) as f64)
        .sum::<f64>()
        / 10.0;
    assert!(tail < 250.0, "late proposals still far out: {tail}");
    let (best, _) = t.best().unwrap();
    assert!(best.get(0).abs() + best.get(1).abs() <= 100, "best {best}");
}

#[test]
fn constant_objective_stays_alive_and_local() {
    // With no signal, integer rounding keeps the simplex oscillating in a
    // small neighbourhood of the default: the tuner must neither crash
    // nor wander (restarts, when rounding does collapse it, re-seed
    // around the best — covered by the unit test in `simplex.rs`).
    let space = ParamSpace::new(vec![ParamDef::new("x", 0, 1_000, 500)]);
    let mut t = SimplexTuner::new(space.clone());
    let mut proposals = Vec::new();
    for _ in 0..80 {
        let c = t.propose();
        assert!(space.validate(&c).is_ok());
        proposals.push(c.get(0));
        t.observe(1.0);
    }
    assert_eq!(t.evaluations(), 80);
    // Late proposals remain near the default (no random walk to the
    // boundaries on a flat surface).
    let late = &proposals[40..];
    assert!(
        late.iter().all(|&x| (200..=800).contains(&x)),
        "flat objective wandered: {late:?}"
    );
}

#[test]
fn recovers_after_objective_shift() {
    // Figure 5's mechanism in miniature: the optimum moves mid-run (the
    // workload changed); the simplex must track it.
    let mut t = SimplexTuner::new(space_2d());
    let phase1 = |c: &Configuration| -((c.get(0) - 600).abs() as f64);
    drive(&mut t, phase1, 60);
    let best_before = t.best().unwrap().0.get(0);
    assert!(
        (400..=800).contains(&best_before),
        "phase 1 best {best_before}"
    );
    // Shift: optimum now at -600. Drive on and look at late proposals.
    let phase2 = |c: &Configuration| -((c.get(0) + 600).abs() as f64);
    let proposals = drive(&mut t, phase2, 120);
    let late_avg: f64 = proposals[proposals.len() - 20..]
        .iter()
        .map(|c| c.get(0) as f64)
        .sum::<f64>()
        / 20.0;
    assert!(
        late_avg < 0.0,
        "simplex failed to move toward the new optimum: late avg {late_avg}"
    );
}

#[test]
fn best_never_regresses() {
    // The reported best is monotone in performance even under a wildly
    // non-stationary objective.
    let mut t = SimplexTuner::new(space_2d());
    let mut best_so_far = f64::NEG_INFINITY;
    let mut state = 1u64;
    for i in 0..150 {
        let c = t.propose();
        state = state.wrapping_mul(6364136223846793005).wrapping_add(i);
        let noise = ((state >> 33) as f64 / (1u64 << 31) as f64 - 0.5) * 100.0;
        let p = c.get(0) as f64 * 0.1 + noise;
        t.observe(p);
        let (_, reported) = t.best().unwrap();
        assert!(reported >= best_so_far);
        best_so_far = reported;
    }
}
