//! Randomised invariant tests of the tuning kernel and reconfiguration
//! logic (seeded `SimRng` loops; no external test crates).

use harmony::baseline::{CoordinateDescent, RandomSearch};
use harmony::monitor::UtilizationSnapshot;
use harmony::param::ParamDef;
use harmony::reconfig::{decide, CostModel, NodeCostInputs, NodeReport, Thresholds};
use harmony::simplex::SimplexTuner;
use harmony::space::ParamSpace;
use harmony::tuner::Tuner;
use harmony::workline::build_work_lines;
use simkit::rng::SimRng;

/// A random bounded integer space of 1..6 dimensions.
fn random_space(rng: &mut SimRng) -> ParamSpace {
    let dims = rng.uniform_i64(1, 5) as usize;
    ParamSpace::new(
        (0..dims)
            .map(|i| {
                let min = rng.uniform_i64(-1000, 999);
                let max = min + rng.uniform_i64(0, 2000);
                ParamDef::new(format!("p{i}"), min, max, (min + max) / 2)
            })
            .collect(),
    )
}

/// Every proposal of every tuner is inside the bounds, for arbitrary
/// spaces and arbitrary (even adversarial) performance feedback.
#[test]
fn tuners_always_propose_in_bounds() {
    let mut rng = SimRng::new(0x7B1D);
    for case in 0..30 {
        let space = random_space(&mut rng);
        let seed = rng.next_u64();
        let perfs: Vec<f64> = (0..40).map(|_| (rng.next_f64() - 0.5) * 2e6).collect();
        let tuners: Vec<Box<dyn Tuner>> = vec![
            Box::new(SimplexTuner::new(space.clone())),
            Box::new(SimplexTuner::new(space.clone()).conservative(true)),
            Box::new(RandomSearch::new(space.clone(), seed)),
            Box::new(CoordinateDescent::new(space.clone())),
        ];
        for mut tuner in tuners {
            for &p in &perfs {
                let c = tuner.propose();
                assert!(
                    space.validate(&c).is_ok(),
                    "case {case}: {} proposed {c}",
                    tuner.name()
                );
                tuner.observe(p);
            }
            assert_eq!(tuner.evaluations(), perfs.len() as u64);
            // Best must be one of the observed performances.
            let (_, best) = tuner.best().unwrap();
            assert!(perfs.iter().any(|&p| (p - best).abs() < 1e-12));
        }
    }
}

/// The simplex on a separable concave objective never ends worse than
/// the default configuration.
#[test]
fn simplex_never_worse_than_default() {
    let mut rng = SimRng::new(0x51AB);
    for case in 0..40 {
        let space = random_space(&mut rng);
        let target_frac = rng.next_f64();
        let objective = |c: &harmony::space::Configuration| -> f64 {
            space
                .defs()
                .iter()
                .zip(c.values())
                .map(|(d, &v)| {
                    let target = d.min as f64 + target_frac * d.span() as f64;
                    -((v as f64 - target) / (d.span().max(1) as f64)).powi(2)
                })
                .sum()
        };
        let default_perf = objective(&space.default_config());
        let mut t = SimplexTuner::new(space.clone());
        for _ in 0..60 {
            let c = t.propose();
            let p = objective(&c);
            t.observe(p);
        }
        let (_, best) = t.best().unwrap();
        assert!(best >= default_perf - 1e-12, "case {case}");
    }
}

/// Work lines partition the nodes exactly: every node appears in
/// exactly one line, and every line has at least one node per tier.
#[test]
fn worklines_partition_nodes() {
    for p in 1..5usize {
        for a in 1..5usize {
            for d in 1..5usize {
                let mut nodes = Vec::new();
                let mut id = 0;
                for _ in 0..p {
                    nodes.push((id, 0u8));
                    id += 1;
                }
                for _ in 0..a {
                    nodes.push((id, 1u8));
                    id += 1;
                }
                for _ in 0..d {
                    nodes.push((id, 2u8));
                    id += 1;
                }
                let lines = build_work_lines(&nodes).unwrap();
                assert_eq!(lines.len(), p.min(a).min(d));
                let mut seen: Vec<usize> = lines.iter().flat_map(|l| l.nodes.clone()).collect();
                seen.sort_unstable();
                let expected: Vec<usize> = (0..nodes.len()).collect();
                assert_eq!(seen, expected, "every node in exactly one line");
                for line in &lines {
                    for tier in 0..3u8 {
                        assert!(line.nodes.iter().any(|n| nodes[*n].1 == tier));
                    }
                }
            }
        }
    }
}

/// The reconfiguration decision, when made, always satisfies the
/// algorithm's constraints: donor under-utilized, different tier,
/// donor's tier keeps at least one node, destination overloaded.
#[test]
fn reconfig_decisions_satisfy_constraints() {
    let mut rng = SimRng::new(0x4EC0);
    for case in 0..100 {
        let n = rng.uniform_i64(2, 9) as usize;
        let utils: Vec<(f64, f64, u8)> = (0..n)
            .map(|_| {
                (
                    rng.next_f64() * 1.2,
                    rng.next_f64() * 1.2,
                    rng.uniform_i64(0, 2) as u8,
                )
            })
            .collect();
        let thresholds = Thresholds::default();
        let reports: Vec<NodeReport<u8>> = utils
            .iter()
            .enumerate()
            .map(|(i, &(cpu, disk, tier))| NodeReport {
                node: i,
                tier,
                util: UtilizationSnapshot {
                    cpu,
                    disk,
                    net: 0.1,
                    mem: 0.1,
                },
                cost: NodeCostInputs {
                    jobs: 3.0,
                    move_cost: 0.3,
                    avg_process_time: 1.0,
                },
            })
            .collect();
        let size = |t: u8| reports.iter().filter(|r| r.tier == t).count();
        if let Some(d) = decide(&reports, &thresholds, &CostModel::default(), size) {
            let donor = &reports[d.node];
            let relieved = &reports[d.relieves];
            assert!(
                donor.util.cpu <= thresholds.low && donor.util.disk <= thresholds.low,
                "case {case}"
            );
            assert!(
                relieved.util.cpu > thresholds.high || relieved.util.disk > thresholds.high,
                "case {case}"
            );
            assert_ne!(donor.tier, relieved.tier, "case {case}");
            assert_eq!(d.to_tier, relieved.tier, "case {case}");
            assert!(
                size(donor.tier) > 1,
                "case {case}: would empty tier {}",
                donor.tier
            );
        }
    }
}

/// Space projection is idempotent and always lands in bounds.
#[test]
fn projection_idempotent() {
    let mut rng = SimRng::new(0x9201);
    for _ in 0..100 {
        let space = random_space(&mut rng);
        let point: Vec<f64> = (0..space.dims())
            .map(|_| (rng.next_f64() - 0.5) * 2e9)
            .collect();
        let c = space.project(&point);
        assert!(space.validate(&c).is_ok());
        let again = space.project(&c.as_f64());
        assert_eq!(c, again);
    }
}
