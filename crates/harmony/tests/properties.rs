//! Property-based tests of the tuning kernel and reconfiguration logic.

use harmony::baseline::{CoordinateDescent, RandomSearch};
use harmony::param::ParamDef;
use harmony::reconfig::{decide, CostModel, NodeCostInputs, NodeReport, Thresholds};
use harmony::monitor::UtilizationSnapshot;
use harmony::simplex::SimplexTuner;
use harmony::space::ParamSpace;
use harmony::tuner::Tuner;
use harmony::workline::build_work_lines;
use proptest::prelude::*;

/// Strategy: a random bounded integer space of 1..6 dimensions.
fn arb_space() -> impl Strategy<Value = ParamSpace> {
    prop::collection::vec((-1000i64..1000, 0i64..2000), 1..6).prop_map(|dims| {
        ParamSpace::new(
            dims.into_iter()
                .enumerate()
                .map(|(i, (min, span))| {
                    let max = min + span;
                    ParamDef::new(format!("p{i}"), min, max, (min + max) / 2)
                })
                .collect(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every proposal of every tuner is inside the bounds, for arbitrary
    /// spaces and arbitrary (even adversarial) performance feedback.
    #[test]
    fn tuners_always_propose_in_bounds(
        space in arb_space(),
        seed in any::<u64>(),
        perfs in prop::collection::vec(-1e6f64..1e6, 40),
    ) {
        let tuners: Vec<Box<dyn Tuner>> = vec![
            Box::new(SimplexTuner::new(space.clone())),
            Box::new(SimplexTuner::new(space.clone()).conservative(true)),
            Box::new(RandomSearch::new(space.clone(), seed)),
            Box::new(CoordinateDescent::new(space.clone())),
        ];
        for mut tuner in tuners {
            for &p in &perfs {
                let c = tuner.propose();
                prop_assert!(space.validate(&c).is_ok(), "{} proposed {c}", tuner.name());
                tuner.observe(p);
            }
            prop_assert_eq!(tuner.evaluations(), perfs.len() as u64);
            // Best must be one of the observed performances.
            let (_, best) = tuner.best().unwrap();
            prop_assert!(perfs.iter().any(|&p| (p - best).abs() < 1e-12));
        }
    }

    /// The simplex on a separable concave objective never ends worse than
    /// the default configuration.
    #[test]
    fn simplex_never_worse_than_default(space in arb_space(), target_frac in 0.0f64..1.0) {
        let objective = |c: &harmony::space::Configuration| -> f64 {
            space
                .defs()
                .iter()
                .zip(c.values())
                .map(|(d, &v)| {
                    let target = d.min as f64 + target_frac * d.span() as f64;
                    -((v as f64 - target) / (d.span().max(1) as f64)).powi(2)
                })
                .sum()
        };
        let default_perf = objective(&space.default_config());
        let mut t = SimplexTuner::new(space.clone());
        for _ in 0..60 {
            let c = t.propose();
            let p = objective(&c);
            t.observe(p);
        }
        let (_, best) = t.best().unwrap();
        prop_assert!(best >= default_perf - 1e-12);
    }

    /// Work lines partition the nodes exactly: every node appears in
    /// exactly one line, and every line has at least one node per tier.
    #[test]
    fn worklines_partition_nodes(
        p in 1usize..5, a in 1usize..5, d in 1usize..5,
    ) {
        let mut nodes = Vec::new();
        let mut id = 0;
        for _ in 0..p { nodes.push((id, 0u8)); id += 1; }
        for _ in 0..a { nodes.push((id, 1u8)); id += 1; }
        for _ in 0..d { nodes.push((id, 2u8)); id += 1; }
        let lines = build_work_lines(&nodes).unwrap();
        prop_assert_eq!(lines.len(), p.min(a).min(d));
        let mut seen: Vec<usize> = lines.iter().flat_map(|l| l.nodes.clone()).collect();
        seen.sort_unstable();
        let expected: Vec<usize> = (0..nodes.len()).collect();
        prop_assert_eq!(seen, expected, "every node in exactly one line");
        for line in &lines {
            for tier in 0..3u8 {
                prop_assert!(line.nodes.iter().any(|n| nodes[*n].1 == tier));
            }
        }
    }

    /// The reconfiguration decision, when made, always satisfies the
    /// algorithm's constraints: donor under-utilized, different tier,
    /// donor's tier keeps at least one node, destination overloaded.
    #[test]
    fn reconfig_decisions_satisfy_constraints(
        utils in prop::collection::vec((0.0f64..1.2, 0.0f64..1.2, 0u8..3), 2..10),
    ) {
        let thresholds = Thresholds::default();
        let reports: Vec<NodeReport<u8>> = utils
            .iter()
            .enumerate()
            .map(|(i, &(cpu, disk, tier))| NodeReport {
                node: i,
                tier,
                util: UtilizationSnapshot { cpu, disk, net: 0.1, mem: 0.1 },
                cost: NodeCostInputs { jobs: 3.0, move_cost: 0.3, avg_process_time: 1.0 },
            })
            .collect();
        let size = |t: u8| reports.iter().filter(|r| r.tier == t).count();
        if let Some(d) = decide(&reports, &thresholds, &CostModel::default(), size) {
            let donor = &reports[d.node];
            let relieved = &reports[d.relieves];
            prop_assert!(donor.util.cpu <= thresholds.low && donor.util.disk <= thresholds.low);
            prop_assert!(relieved.util.cpu > thresholds.high || relieved.util.disk > thresholds.high);
            prop_assert_ne!(donor.tier, relieved.tier);
            prop_assert_eq!(d.to_tier, relieved.tier);
            prop_assert!(size(donor.tier) > 1, "would empty tier {}", donor.tier);
        }
    }

    /// Space projection is idempotent and always lands in bounds.
    #[test]
    fn projection_idempotent(space in arb_space(), point in prop::collection::vec(-1e9f64..1e9, 6)) {
        let point = &point[..space.dims()];
        let c = space.project(point);
        prop_assert!(space.validate(&c).is_ok());
        let again = space.project(&c.as_f64());
        prop_assert_eq!(c, again);
    }
}
