//! Randomised invariant tests of the cluster substrate (seeded `SimRng`
//! loops; no external test crates).

use cluster::cache::LruCache;
use cluster::config::{ClusterConfig, NodeParams, Role, Topology};
use cluster::memory::{app_memory_mb, db_memory_mb, pressure_factor, proxy_memory_mb};
use cluster::params::{
    DbParams, ProxyParams, WebParams, DB_TUNABLES, PROXY_TUNABLES, WEB_TUNABLES,
};
use simkit::rng::SimRng;

/// A random in-bounds value vector for a tunable set.
fn random_values(rng: &mut SimRng, defs: &'static [cluster::params::TunableDef]) -> Vec<i64> {
    defs.iter().map(|d| rng.uniform_i64(d.min, d.max)).collect()
}

/// The LRU cache maintains its byte accounting under arbitrary
/// operation sequences and never exceeds capacity.
#[test]
fn lru_accounting_invariant() {
    let mut rng = SimRng::new(0x1AC8);
    for case in 0..40 {
        let capacity = rng.uniform_i64(1_000, 99_999) as u64;
        let ops = rng.uniform_i64(1, 500) as usize;
        let mut cache = LruCache::new(capacity);
        for _ in 0..ops {
            let key = rng.uniform_i64(0, 199) as u64;
            let size = rng.uniform_i64(1, 4_999) as u64;
            match rng.uniform_i64(0, 2) {
                0 => {
                    cache.insert(key, size);
                }
                1 => {
                    cache.get(key);
                }
                _ => {
                    cache.remove(key);
                }
            }
            assert!(cache.used_bytes() <= capacity, "case {case}");
        }
    }
}

/// Inserted-and-never-evicted objects are found; eviction only happens
/// under byte pressure.
#[test]
fn lru_small_working_set_never_evicts() {
    let mut rng = SimRng::new(0x1AC9);
    for _ in 0..40 {
        let n = rng.uniform_i64(1, 100) as usize;
        let keys: Vec<u64> = (0..n).map(|_| rng.uniform_i64(0, 49) as u64).collect();
        // Each object 100 bytes, capacity fits all 50 possible keys.
        let mut cache = LruCache::new(50 * 100);
        for &k in &keys {
            cache.insert(k, 100);
        }
        assert_eq!(cache.evictions(), 0);
        for &k in &keys {
            assert!(cache.contains(k));
        }
    }
}

/// Parameter structs round-trip through value vectors for any
/// in-bounds assignment.
#[test]
fn params_roundtrip() {
    let mut rng = SimRng::new(0x9A3A);
    for _ in 0..100 {
        let pv = random_values(&mut rng, &PROXY_TUNABLES);
        let wv = random_values(&mut rng, &WEB_TUNABLES);
        let dv = random_values(&mut rng, &DB_TUNABLES);
        let p = ProxyParams::from_values(&pv).unwrap();
        assert_eq!(p.to_values().to_vec(), pv);
        let w = WebParams::from_values(&wv).unwrap();
        assert_eq!(w.to_values().to_vec(), wv);
        let d = DbParams::from_values(&dv).unwrap();
        assert_eq!(d.to_values().to_vec(), dv);
        // Effective pools always have min <= max and positive sizes.
        let pool = w.http_pool();
        assert!(pool.min >= 1 && pool.min <= pool.max);
        let (lo, hi) = p.effective_swap_watermarks();
        assert!(lo < hi && hi <= 100);
    }
}

/// Memory demand is monotone in each consumer and the pressure factor
/// is monotone in usage.
#[test]
fn memory_monotone() {
    let mut rng = SimRng::new(0x3E30);
    for _ in 0..60 {
        let dv = random_values(&mut rng, &DB_TUNABLES);
        let bump_dim = rng.uniform_i64(0, DB_TUNABLES.len() as i64 - 1) as usize;
        let d = DbParams::from_values(&dv).unwrap();
        let base = db_memory_mb(&d);
        let mut bumped_values = dv.clone();
        let def = &DB_TUNABLES[bump_dim];
        bumped_values[bump_dim] = def.max;
        let bumped = db_memory_mb(&DbParams::from_values(&bumped_values).unwrap());
        assert!(bumped >= base - 1e-9, "dim {} shrank memory", def.name);
        // Pressure monotonicity.
        assert!(pressure_factor(bumped, 1024.0) >= pressure_factor(base, 1024.0) - 1e-12);
    }
    // Proxy/app memory positive for default bounds.
    assert!(proxy_memory_mb(&ProxyParams::default_config()) > 0.0);
    assert!(app_memory_mb(&WebParams::default_config()) > 0.0);
}

/// Any topology reassignment that succeeds preserves the node count
/// and never empties a tier; the adapted config stays role-aligned.
#[test]
fn reassignment_preserves_invariants() {
    for p in 1..4usize {
        for a in 1..4usize {
            for d in 1..4usize {
                let topology = Topology::tiers(p, a, d).unwrap();
                let config = ClusterConfig::defaults(&topology);
                for node in 0..topology.len() {
                    for to_role in Role::ALL {
                        match topology.reassign(node, to_role) {
                            Ok(new_topology) => {
                                assert_eq!(new_topology.len(), topology.len());
                                for role in Role::ALL {
                                    assert!(new_topology.count(role) >= 1);
                                }
                                let adapted = config.adapt_to(&new_topology);
                                for (i, params) in adapted.nodes().iter().enumerate() {
                                    assert_eq!(params.role(), new_topology.role(i));
                                }
                            }
                            Err(_) => {
                                // Refusals must be for a real reason: same
                                // tier or emptying guard.
                                let same = topology.role(node) == to_role;
                                let would_empty = topology.count(topology.role(node)) == 1;
                                assert!(same || would_empty);
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Object sizes are deterministic and within the documented clamp.
#[test]
fn object_sizes_stable() {
    let mut rng = SimRng::new(0x0B1E);
    for _ in 0..200 {
        let id = rng.next_u64();
        let a = cluster::object::object_size_bytes(id);
        let b = cluster::object::object_size_bytes(id);
        assert_eq!(a, b);
        assert!((512..=2 * 1024 * 1024).contains(&a));
    }
}

/// NodeParams defaults align with their role for every role.
#[test]
fn node_params_roles() {
    for role in Role::ALL {
        assert_eq!(NodeParams::default_for(role).role(), role);
    }
}
