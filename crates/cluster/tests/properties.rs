//! Property-based tests of the cluster substrate.

use cluster::cache::LruCache;
use cluster::config::{ClusterConfig, NodeParams, Role, Topology};
use cluster::memory::{app_memory_mb, db_memory_mb, pressure_factor, proxy_memory_mb};
use cluster::params::{DbParams, ProxyParams, WebParams, DB_TUNABLES, PROXY_TUNABLES, WEB_TUNABLES};
use proptest::prelude::*;

/// Arbitrary in-bounds value vectors per role.
fn arb_values(defs: &'static [cluster::params::TunableDef]) -> impl Strategy<Value = Vec<i64>> {
    defs.iter()
        .map(|d| (d.min..=d.max).boxed())
        .collect::<Vec<_>>()
        .prop_map(|v| v)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The LRU cache maintains its byte accounting under arbitrary
    /// operation sequences and never exceeds capacity.
    #[test]
    fn lru_accounting_invariant(
        capacity in 1_000u64..100_000,
        ops in prop::collection::vec((0u64..200, 1u64..5_000, 0u8..3), 1..500),
    ) {
        let mut cache = LruCache::new(capacity);
        for (key, size, op) in ops {
            match op {
                0 => { cache.insert(key, size); }
                1 => { cache.get(key); }
                _ => { cache.remove(key); }
            }
            prop_assert!(cache.used_bytes() <= capacity);
        }
    }

    /// Inserted-and-never-evicted objects are found; eviction only happens
    /// under byte pressure.
    #[test]
    fn lru_small_working_set_never_evicts(
        keys in prop::collection::vec(0u64..50, 1..100),
    ) {
        // Each object 100 bytes, capacity fits all 50 possible keys.
        let mut cache = LruCache::new(50 * 100);
        for &k in &keys {
            cache.insert(k, 100);
        }
        prop_assert_eq!(cache.evictions(), 0);
        for &k in &keys {
            prop_assert!(cache.contains(k));
        }
    }

    /// Parameter structs round-trip through value vectors for any
    /// in-bounds assignment.
    #[test]
    fn params_roundtrip(
        pv in arb_values(&PROXY_TUNABLES),
        wv in arb_values(&WEB_TUNABLES),
        dv in arb_values(&DB_TUNABLES),
    ) {
        let p = ProxyParams::from_values(&pv).unwrap();
        prop_assert_eq!(p.to_values().to_vec(), pv);
        let w = WebParams::from_values(&wv).unwrap();
        prop_assert_eq!(w.to_values().to_vec(), wv);
        let d = DbParams::from_values(&dv).unwrap();
        prop_assert_eq!(d.to_values().to_vec(), dv);
        // Effective pools always have min <= max and positive sizes.
        let pool = w.http_pool();
        prop_assert!(pool.min >= 1 && pool.min <= pool.max);
        let (lo, hi) = p.effective_swap_watermarks();
        prop_assert!(lo < hi && hi <= 100);
    }

    /// Memory demand is monotone in each consumer and the pressure factor
    /// is monotone in usage.
    #[test]
    fn memory_monotone(
        dv in arb_values(&DB_TUNABLES),
        bump_dim in 0usize..9,
    ) {
        let d = DbParams::from_values(&dv).unwrap();
        let base = db_memory_mb(&d);
        let mut bumped_values = dv.clone();
        let def = &DB_TUNABLES[bump_dim];
        bumped_values[bump_dim] = def.max;
        let bumped = db_memory_mb(&DbParams::from_values(&bumped_values).unwrap());
        prop_assert!(bumped >= base - 1e-9, "dim {} shrank memory", def.name);
        // Pressure monotonicity.
        prop_assert!(pressure_factor(bumped, 1024.0) >= pressure_factor(base, 1024.0) - 1e-12);
        // Proxy/app memory positive for any bounds.
        prop_assert!(proxy_memory_mb(&ProxyParams::default_config()) > 0.0);
        prop_assert!(app_memory_mb(&WebParams::default_config()) > 0.0);
    }

    /// Any topology reassignment that succeeds preserves the node count
    /// and never empties a tier; the adapted config stays role-aligned.
    #[test]
    fn reassignment_preserves_invariants(
        p in 1usize..4, a in 1usize..4, d in 1usize..4,
        node in 0usize..12, to in 0u8..3,
    ) {
        let topology = Topology::tiers(p, a, d).unwrap();
        let to_role = [Role::Proxy, Role::App, Role::Db][to as usize];
        let config = ClusterConfig::defaults(&topology);
        match topology.reassign(node % topology.len(), to_role) {
            Ok(new_topology) => {
                prop_assert_eq!(new_topology.len(), topology.len());
                for role in Role::ALL {
                    prop_assert!(new_topology.count(role) >= 1);
                }
                let adapted = config.adapt_to(&new_topology);
                for (i, params) in adapted.nodes().iter().enumerate() {
                    prop_assert_eq!(params.role(), new_topology.role(i));
                }
            }
            Err(_) => {
                // Refusals must be for a real reason: same tier, missing
                // node, or emptying guard.
                let n = node % topology.len();
                let same = topology.role(n) == to_role;
                let would_empty = topology.count(topology.role(n)) == 1;
                prop_assert!(same || would_empty);
            }
        }
    }

    /// Object sizes are deterministic and within the documented clamp.
    #[test]
    fn object_sizes_stable(id in any::<u64>()) {
        let a = cluster::object::object_size_bytes(id);
        let b = cluster::object::object_size_bytes(id);
        prop_assert_eq!(a, b);
        prop_assert!((512..=2 * 1024 * 1024).contains(&a));
    }

    /// NodeParams defaults align with their role for every role.
    #[test]
    fn node_params_roles(role_idx in 0u8..3) {
        let role = [Role::Proxy, Role::App, Role::Db][role_idx as usize];
        prop_assert_eq!(NodeParams::default_for(role).role(), role);
    }
}
