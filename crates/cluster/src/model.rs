//! The full three-tier cluster as a discrete-event model.
//!
//! Request pipeline (one TPC-W interaction):
//!
//! ```text
//! browser think ─► proxy CPU (lookup) ─┬─ mem hit ──────────► proxy NIC ─► done
//!                                      ├─ disk hit ─► disk ─► proxy NIC ─► done
//!                                      └─ miss/dynamic ─► app HTTP thread
//!                                           (dynamic also: AJP worker)
//!                                           ─► app CPU (servlet)
//!                                           ─► per query: DB conn ─► run slot
//!                                                ─► DB CPU ─► [DB disk] ─► [binlog flush]
//!                                           ─► release threads ─► proxy admit
//!                                           ─► proxy NIC ─► done
//! ```
//!
//! Thread pools, connection slots, and run slots are *held* resources
//! (semaphores with FIFO queues); CPU/disk/NIC are timed multi-servers.
//! An HTTP/AJP accept-queue overflow refuses the request — the emulated
//! browser records an error and goes back to thinking.

// Exempt from the crate's no-panic gate: the pipeline advances requests
// through per-request state maps whose entries are inserted exactly when
// the request enters a stage and removed when it leaves, so every lookup
// on the hot path is invariant-backed; threading `Option` through the
// event handlers would bury the model logic. A panic here is a model
// bug, not an operational condition — the boundary layers (`runner`,
// `config`, `params`) stay under the gate and return typed errors.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use crate::config::{ClusterConfig, NodeId, Role, Topology};
use crate::node::{Node, NodeUtilization};
use crate::object::object_size_bytes;
use crate::proxy::CacheOutcome;
use crate::request::{ReqId, ReqPhase, Request, RequestSlab};
use crate::spec::NodeSpec;
use faults::{Health, HealthChange, HealthTimeline};
use simkit::engine::{Model, Scheduler};
use simkit::resource::Admission;
use simkit::rng::{LognormalShape, SimRng};
use simkit::time::{SimDuration, SimTime};
use std::collections::HashMap;
use tpcw::browser::{BrowserConfig, BrowserId, BrowserPool};
use tpcw::demand::{self, CPU_DEMAND_CV, OBJECT_SIZE_CV};
use tpcw::interaction::Interaction;
use tpcw::metrics::{IntervalPlan, MetricsCollector};
use tpcw::mix::Workload;
use tpcw::scale::CatalogScale;

pub use tpcw::cohort::{CohortPlan, LoadModel, DEFAULT_COHORT_BINS};

/// How requests are spread across a tier's nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LoadBalancing {
    /// Rotate through the tier's nodes (the paper's assumption of evenly
    /// distributed load, which parameter duplication relies on).
    #[default]
    RoundRobin,
    /// Send each request to the tier node with the fewest requests
    /// currently assigned to it.
    LeastConnections,
}

/// Held-resource pools a request can be granted from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pool {
    Http,
    Ajp,
    DbConn,
    DbRun,
}

/// The event alphabet of the cluster model.
///
/// Node ids are carried as `u32` (not [`NodeId`]/`usize`) so the whole
/// event fits in 16 bytes: the calendar's payload array stays half as
/// wide, which matters because every sift step moves one payload. The
/// dispatch loop widens back to `usize` exactly once per event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ev {
    /// A browser finished thinking and issues its next interaction.
    Think(BrowserId),
    /// A CPU slice finished on `node` for request `req` (gen-stamped).
    CpuDone(u32, ReqId, u32),
    /// A disk I/O finished.
    DiskDone(u32, ReqId, u32),
    /// A NIC transfer finished.
    NicDone(u32, ReqId, u32),
    /// A held-resource pool granted a queued request.
    Granted(u32, ReqId, u32, Pool),
    /// An injected health transition fires (index into the scenario's
    /// fault timeline changes).
    Health(u32),
    /// A cohort think-time slot fires: release every token parked in it
    /// (cohort load model only).
    CohortRelease(u32),
}

/// Everything needed to build one iteration's world.
#[derive(Debug, Clone)]
pub struct ClusterScenario {
    pub spec: NodeSpec,
    pub topology: Topology,
    pub config: ClusterConfig,
    pub workload: Workload,
    pub scale: CatalogScale,
    pub browsers: BrowserConfig,
    pub plan: IntervalPlan,
    pub seed: u64,
    /// Optional work-line partition (§III.B): each inner vector lists the
    /// node ids of one line (>= 1 node of every tier). When set, browser
    /// `b` is pinned to line `b % lines.len()` and its requests are served
    /// exclusively by that line's nodes; per-line throughput is reported.
    pub lines: Option<Vec<Vec<NodeId>>>,
    /// Browser navigation mode: `false` (default) samples interactions
    /// i.i.d. from the mix; `true` walks the fitted TPC-W Markov
    /// navigation graph ([`tpcw::navigation`]) — same steady-state
    /// frequencies, realistic page-to-page sessions.
    pub markov_sessions: bool,
    /// Tier load-balancing policy.
    pub load_balancing: LoadBalancing,
    /// Per-node hardware overrides (failure injection / heterogeneous
    /// clusters): entry `i` replaces `spec` for node `i`. Shorter vectors
    /// leave trailing nodes on the default spec.
    pub node_specs: Vec<Option<NodeSpec>>,
    /// Injected fault timeline for this run: initial node healths plus
    /// scheduled transitions. `None` (the default) injects nothing and
    /// keeps the simulation byte-identical to a fault-free build.
    pub faults: Option<HealthTimeline>,
    /// Browser-population model. `PerBrowser` (the default) is the
    /// historical one-entity-per-browser loop; `Cohort` collapses the
    /// population into weighted tokens on a think-time slot wheel (see
    /// [`tpcw::cohort`]) so event count stays bounded at any population.
    pub load_model: LoadModel,
}

impl ClusterScenario {
    /// Single-work-line scenario (one node per tier) at the paper's scale.
    pub fn single(workload: Workload, population: u32, plan: IntervalPlan, seed: u64) -> Self {
        let topology = Topology::single();
        let config = ClusterConfig::defaults(&topology);
        ClusterScenario {
            spec: NodeSpec::hpdc04(),
            topology,
            config,
            workload,
            scale: CatalogScale::hpdc04(),
            browsers: BrowserConfig::hpdc04(population),
            plan,
            seed,
            lines: None,
            markov_sessions: false,
            load_balancing: LoadBalancing::default(),
            node_specs: Vec::new(),
            faults: None,
            load_model: LoadModel::default(),
        }
    }
}

impl ClusterScenario {
    /// Degrade node `node` to `cpu_scale` of nominal CPU speed (failure
    /// injection: a flaky fan, a co-tenant, a dying disk controller...).
    pub fn degrade_cpu(&mut self, node: NodeId, cpu_scale: f64) {
        if self.node_specs.len() <= node {
            self.node_specs.resize(self.topology.len(), None);
        }
        let mut spec = self.node_specs[node].unwrap_or(self.spec);
        spec.cpu_scale = cpu_scale;
        self.node_specs[node] = Some(spec);
    }

    /// Validate cross-field consistency before running: configuration
    /// aligned with the topology, sane specs, well-formed work lines.
    pub fn validate(&self) -> Result<(), String> {
        self.spec.validate()?;
        for spec in self.node_specs.iter().flatten() {
            spec.validate()?;
        }
        if self.node_specs.len() > self.topology.len() {
            return Err(format!(
                "{} node specs for {} nodes",
                self.node_specs.len(),
                self.topology.len()
            ));
        }
        if self.config.len() != self.topology.len() {
            return Err(format!(
                "config has {} nodes, topology {}",
                self.config.len(),
                self.topology.len()
            ));
        }
        for (i, (params, role)) in self
            .config
            .nodes()
            .iter()
            .zip(self.topology.roles())
            .enumerate()
        {
            if params.role() != *role {
                return Err(format!(
                    "node {i}: params for {} on a {} node",
                    params.role(),
                    role
                ));
            }
        }
        self.scale.validate()?;
        if self.browsers.population == 0 {
            return Err("no emulated browsers".into());
        }
        if let LoadModel::Cohort { bins } = self.load_model {
            if bins == 0 {
                return Err("cohort load model needs at least one think-time bin".into());
            }
            if self.markov_sessions {
                return Err("markov sessions track per-browser page state and need the \
                     per-browser load model"
                    .into());
            }
        }
        if let Some(tl) = &self.faults {
            if tl.initial.len() != self.topology.len() {
                return Err(format!(
                    "fault timeline covers {} nodes, topology has {}",
                    tl.initial.len(),
                    self.topology.len()
                ));
            }
            for c in &tl.changes {
                if c.node >= self.topology.len() {
                    return Err(format!("fault transition targets node {}", c.node));
                }
            }
            for h in tl
                .initial
                .iter()
                .chain(tl.changes.iter().map(|c| &c.health))
            {
                let bad = [h.cpu_factor(), h.disk_factor(), h.nic_factor()]
                    .into_iter()
                    .any(|f| f < 1.0 || !f.is_finite());
                if bad {
                    return Err("degraded health factor below 1".into());
                }
            }
        }
        if let Some(lines) = &self.lines {
            if lines.is_empty() {
                return Err("empty work-line partition".into());
            }
            let mut seen = vec![false; self.topology.len()];
            for (li, line) in lines.iter().enumerate() {
                for &n in line {
                    if n >= self.topology.len() {
                        return Err(format!("work line {li} references node {n}"));
                    }
                    if seen[n] {
                        return Err(format!("node {n} appears in two work lines"));
                    }
                    seen[n] = true;
                }
                for role in [Role::Proxy, Role::App, Role::Db] {
                    if !line.iter().any(|&n| self.topology.role(n) == role) {
                        return Err(format!("work line {li} has no {role} node"));
                    }
                }
            }
        }
        Ok(())
    }
}

/// The cluster world: nodes, browsers, in-flight requests, metrics.
pub struct ClusterModel {
    pub nodes: Vec<Node>,
    topology: Topology,
    workload: Workload,
    scale: CatalogScale,
    browsers: BrowserPool,
    requests: RequestSlab,
    pub metrics: MetricsCollector,
    /// Service-time jitter stream.
    rng_service: SimRng,
    /// Precomputed lognormal shapes for the fixed demand CVs (bit-identical
    /// to deriving them per draw; hoists `ln`/`sqrt` off the hot path).
    object_size_shape: LognormalShape,
    cpu_demand_shape: LognormalShape,
    /// Per-line, per-tier node lists (a single implicit line when no
    /// partition is configured).
    line_tiers: Vec<[Vec<NodeId>; 3]>,
    /// Per-line, per-tier round-robin cursors.
    rr: Vec<[usize; 3]>,
    /// Per-line completions inside the measurement window.
    line_completed: Vec<u64>,
    /// Markov session state: the navigation model and each browser's
    /// current page (None in i.i.d. mode).
    navigation: Option<(tpcw::navigation::NavigationModel, Vec<Option<Interaction>>)>,
    /// Load-balancing policy and per-node assigned-request counts.
    load_balancing: LoadBalancing,
    assigned: Vec<u32>,
    /// Scheduled health transitions (`Ev::Health(k)` indexes into this).
    fault_changes: Vec<HealthChange>,
    /// Completed-request count (all phases, incl. warmup).
    total_done: u64,
    /// Failed (refused) request count.
    total_failed: u64,
    /// Cohort load-model state (`None` in the per-browser model).
    cohort: Option<CohortRuntime>,
}

/// Runtime state of the cohort load model: the resolved geometry plus
/// the slot wheel of tokens waiting out their think time. The map is
/// only ever accessed by slot key (insert on park, remove on release),
/// never iterated, so its order can't leak into event order and seeded
/// runs stay deterministic.
struct CohortRuntime {
    plan: CohortPlan,
    slots: HashMap<u32, Vec<BrowserId>>,
}

impl ClusterModel {
    /// Build the world and schedule the initial browser wave on `sim`.
    pub fn new(scenario: &ClusterScenario, start: SimTime) -> Self {
        let root = SimRng::new(scenario.seed);
        // In the cohort model the circulating entities are weighted
        // tokens, not browsers: the pool shrinks to `plan.tokens` streams
        // and every downstream count/demand is scaled by token weight.
        let (browser_cfg, cohort) = match scenario.load_model {
            LoadModel::PerBrowser => (scenario.browsers, None),
            LoadModel::Cohort { bins } => {
                let plan = CohortPlan::build(
                    scenario.browsers.population,
                    scenario.browsers.think_mean,
                    bins,
                );
                let cfg = BrowserConfig {
                    population: plan.tokens,
                    ..scenario.browsers
                };
                (
                    cfg,
                    Some(CohortRuntime {
                        plan,
                        slots: HashMap::new(),
                    }),
                )
            }
        };
        let browsers = BrowserPool::new(browser_cfg, &root.substream(1));
        let rng_service = root.substream(2);
        let hot_slots = scenario.scale.hot_table_slots();
        let mut nodes: Vec<Node> = scenario
            .config
            .nodes()
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let spec = scenario
                    .node_specs
                    .get(i)
                    .copied()
                    .flatten()
                    .unwrap_or(scenario.spec);
                Node::new(spec, p, start, hot_slots)
            })
            .collect();
        if let Some(tl) = &scenario.faults {
            for (node, health) in nodes.iter_mut().zip(&tl.initial) {
                node.health = *health;
            }
        }
        // At weight g > 1 a token's hold time on a thread/connection
        // slot already inflates by g (its downstream demand is scaled),
        // so server counts are left alone: S slots draining g-times
        // slower at 1/g the arrival rate reproduce the per-browser
        // pool throughput and wait times (Little's law — shrinking the
        // slot count too would cut pool throughput by g twice). Only the
        // *bounded accept queues* are rescaled to token units: q/g
        // queued tokens at g-times the drain interval wait exactly as
        // long as q queued browsers did, so overflow — the refusal
        // behaviour that dominates overload — engages at the same
        // effective backlog. Timed resources (CPU/disk/NIC) also keep
        // their capacity: demand inflation alone preserves utilisation
        // and saturation throughput there.
        if let Some(c) = &cohort {
            let g = c.plan.weight;
            if g > 1 {
                let to_tokens = |cap: u32| -> u32 { ((cap + g / 2) / g).max(1) };
                for (node, params) in nodes.iter_mut().zip(scenario.config.nodes()) {
                    if let crate::config::NodeParams::App(w) = params {
                        let (http, ajp) = (w.http_pool(), w.ajp_pool());
                        let app = node.app_mut().expect("app role");
                        app.http_pool
                            .set_queue_cap(Some(to_tokens(http.accept) as usize));
                        app.ajp_pool
                            .set_queue_cap(Some(to_tokens(ajp.accept) as usize));
                    }
                }
            }
        }
        let line_tiers: Vec<[Vec<NodeId>; 3]> = match &scenario.lines {
            Some(lines) => lines
                .iter()
                .map(|line| {
                    let mut tiers: [Vec<NodeId>; 3] = Default::default();
                    for &n in line {
                        tiers[Self::tier_index(scenario.topology.role(n))].push(n);
                    }
                    for (t, nodes) in tiers.iter().enumerate() {
                        assert!(!nodes.is_empty(), "work line missing tier {t}");
                    }
                    tiers
                })
                .collect(),
            None => vec![[
                scenario.topology.nodes_in(Role::Proxy),
                scenario.topology.nodes_in(Role::App),
                scenario.topology.nodes_in(Role::Db),
            ]],
        };
        let line_count = line_tiers.len();
        let navigation = scenario.markov_sessions.then(|| {
            (
                tpcw::navigation::NavigationModel::fit(scenario.workload.mix()),
                vec![None; browser_cfg.population as usize],
            )
        });
        let node_count = scenario.topology.len();
        ClusterModel {
            nodes,
            navigation,
            load_balancing: scenario.load_balancing,
            assigned: vec![0; node_count],
            fault_changes: scenario
                .faults
                .as_ref()
                .map(|tl| tl.changes.clone())
                .unwrap_or_default(),
            topology: scenario.topology.clone(),
            workload: scenario.workload,
            scale: scenario.scale,
            browsers,
            requests: RequestSlab::new(),
            metrics: MetricsCollector::new(scenario.plan, start),
            rng_service,
            object_size_shape: LognormalShape::from_cv(OBJECT_SIZE_CV),
            cpu_demand_shape: LognormalShape::from_cv(CPU_DEMAND_CV),
            rr: vec![[0; 3]; line_count],
            line_completed: vec![0; line_count],
            line_tiers,
            total_done: 0,
            total_failed: 0,
            cohort,
        }
    }

    /// Browsers represented by `browser`'s stream: 1 in the per-browser
    /// model, the token weight in the cohort model.
    #[inline]
    fn weight_of(&self, browser: BrowserId) -> u32 {
        match &self.cohort {
            Some(c) => c.plan.token_weight(browser),
            None => 1,
        }
    }

    /// Scale a service demand by a token weight. The `weight > 1` branch
    /// keeps the per-browser path bit-identical: no float multiply, no
    /// rounding — the untouched duration flows through.
    #[inline]
    fn weighted(d: SimDuration, weight: u32) -> SimDuration {
        if weight > 1 {
            SimDuration::from_micros(d.as_micros().saturating_mul(u64::from(weight)))
        } else {
            d
        }
    }

    fn tier_index(role: Role) -> usize {
        match role {
            Role::Proxy => 0,
            Role::App => 1,
            Role::Db => 2,
        }
    }

    /// Pick a node in `role`'s tier within a work line, per the
    /// configured load-balancing policy. `Down` nodes are skipped; if the
    /// whole tier is down, there is nowhere to route and the caller must
    /// refuse the request. The chosen node's assignment count rises;
    /// callers release it via [`Self::release_node`].
    fn pick_node(&mut self, line: usize, role: Role) -> Option<NodeId> {
        let t = Self::tier_index(role);
        let list = &self.line_tiers[line][t];
        debug_assert!(!list.is_empty());
        let id = match self.load_balancing {
            LoadBalancing::RoundRobin => {
                let len = list.len();
                let cursor = self.rr[line][t];
                let mut picked = None;
                for off in 0..len {
                    let cand = list[(cursor + off) % len];
                    if !self.nodes[cand].health.is_down() {
                        self.rr[line][t] = (cursor + off + 1) % len;
                        picked = Some(cand);
                        break;
                    }
                }
                picked?
            }
            LoadBalancing::LeastConnections => *list
                .iter()
                .filter(|&&n| !self.nodes[n].health.is_down())
                .min_by_key(|&&n| (self.assigned[n], n))?,
        };
        self.assigned[id] += 1;
        Some(id)
    }

    /// Release a node assignment taken by [`Self::pick_node`].
    fn release_node(&mut self, node: NodeId) {
        self.assigned[node] = self.assigned[node].saturating_sub(1);
    }

    /// The work line a browser is pinned to.
    fn line_of_browser(&self, browser: BrowserId) -> usize {
        browser as usize % self.line_tiers.len()
    }

    /// The generation stamp for event scheduling. Only ever called for
    /// requests that are live (just inserted, in a pipeline stage, or
    /// popped from a resource queue — queued jobs are never reaped), so
    /// this is a direct counter read.
    #[inline(always)]
    fn stamp(&self, req: ReqId) -> u32 {
        self.requests.stamp_of(req)
    }

    /// True if the event's generation matches the live request.
    #[inline(always)]
    fn live(&self, req: ReqId, gen: u32) -> bool {
        self.requests.get(req).is_some_and(|r| r.generation == gen)
    }

    pub fn workload(&self) -> Workload {
        self.workload
    }

    pub fn total_done(&self) -> u64 {
        self.total_done
    }

    pub fn total_failed(&self) -> u64 {
        self.total_failed
    }

    pub fn in_flight(&self) -> usize {
        self.requests.live()
    }

    /// Utilization snapshot of every node at `now`.
    pub fn utilizations(&self, now: SimTime) -> Vec<NodeUtilization> {
        self.nodes.iter().map(|n| n.utilization(now)).collect()
    }

    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Number of work lines (1 when no partition is configured).
    pub fn line_count(&self) -> usize {
        self.line_tiers.len()
    }

    /// Per-line WIPS over the measurement window.
    pub fn line_wips(&self) -> Vec<f64> {
        let secs = self.metrics.plan().measure.as_secs_f64();
        self.line_completed
            .iter()
            .map(|&c| if secs > 0.0 { c as f64 / secs } else { 0.0 })
            .collect()
    }

    // --- request lifecycle -------------------------------------------------

    fn issue_request(&mut self, sched: &mut Scheduler<Ev>, browser: BrowserId) {
        let now = sched.now();
        let interaction = match &self.navigation {
            Some((nav, pages)) => {
                let rng = self.browsers.rng(browser);
                let next = match pages[browser as usize] {
                    Some(page) => nav.next(page, rng),
                    None => nav.entry(rng),
                };
                self.navigation.as_mut().unwrap().1[browser as usize] = Some(next);
                next
            }
            None => {
                let mix = self.workload.mix();
                self.browsers.sample_interaction(browser, mix)
            }
        };
        let profile = demand::profile(interaction);

        let mut req = Request::new(browser, interaction, now);
        // Batch every remaining draw of this admission — cacheability,
        // object/size, and the post-response think time — into one pass
        // over the browser's stream. The browser is closed-loop (at most
        // one request in flight), so its stream sees the exact same draw
        // sequence as drawing the think time at completion; stashing it in
        // the request just touches the RNG state once per admission.
        let think_mean = self.browsers.config().think_mean;
        let brng = self.browsers.rng(browser);
        let cacheable = brng.chance(profile.cacheable);
        if cacheable {
            let obj = brng.zipf(self.scale.static_objects(), self.scale.popularity_theta);
            req.object = Some(obj);
            req.response_bytes = object_size_bytes(obj);
            req.needs_servlet = false;
        } else {
            let kb = brng.lognormal_shaped(self.object_size_shape, profile.object_kb.max(0.5));
            req.response_bytes = (kb * 1024.0).max(512.0) as u64;
            req.needs_servlet = true;
            req.queries_remaining = profile.db_queries;
        }
        req.think = brng.exp_duration(think_mean);
        req.weight = self.weight_of(browser);
        let line = self.line_of_browser(browser);
        let Some(proxy_node) = self.pick_node(line, Role::Proxy) else {
            // Every proxy in the line is down: connection refused before a
            // request even forms. The browser records the error and thinks
            // again, so the event loop never starves.
            self.refuse_unrouted(sched, browser, req.think);
            return;
        };
        req.line = line as u32;
        req.proxy_node = proxy_node;
        req.phase = ReqPhase::ProxyLookup;
        let weight = req.weight;
        let id = self.requests.insert(req);
        let demand = {
            let node = &self.nodes[proxy_node];
            let p = node.proxy().expect("proxy role");
            node.cpu_time(p.lookup_cpu())
        };
        self.offer_cpu(sched, proxy_node, id, Self::weighted(demand, weight));
    }

    /// Offer a CPU slice; schedule the completion if it started.
    fn offer_cpu(
        &mut self,
        sched: &mut Scheduler<Ev>,
        node: NodeId,
        req: ReqId,
        demand: SimDuration,
    ) {
        let gen = self.stamp(req);
        match self.nodes[node].cpu.offer(sched.now(), req, demand) {
            Admission::Started => sched.after(demand, Ev::CpuDone(node as u32, req, gen)),
            Admission::Enqueued => {}
            Admission::Rejected => unreachable!("cpu queue is unbounded"),
        }
    }

    fn offer_disk(
        &mut self,
        sched: &mut Scheduler<Ev>,
        node: NodeId,
        req: ReqId,
        demand: SimDuration,
    ) {
        let gen = self.stamp(req);
        match self.nodes[node].disk.offer(sched.now(), req, demand) {
            Admission::Started => sched.after(demand, Ev::DiskDone(node as u32, req, gen)),
            Admission::Enqueued => {}
            Admission::Rejected => unreachable!("disk queue is unbounded"),
        }
    }

    fn offer_nic(
        &mut self,
        sched: &mut Scheduler<Ev>,
        node: NodeId,
        req: ReqId,
        demand: SimDuration,
    ) {
        let gen = self.stamp(req);
        match self.nodes[node].nic.offer(sched.now(), req, demand) {
            Admission::Started => sched.after(demand, Ev::NicDone(node as u32, req, gen)),
            Admission::Enqueued => {}
            Admission::Rejected => unreachable!("nic queue is unbounded"),
        }
    }

    /// Pop the next job from a timed resource after a completion and
    /// schedule its finish event.
    fn advance_cpu(&mut self, sched: &mut Scheduler<Ev>, node: NodeId) {
        if let Some(d) = self.nodes[node].cpu.complete(sched.now()) {
            let gen = self.stamp(d.job);
            sched.after(d.demand, Ev::CpuDone(node as u32, d.job, gen));
        }
    }

    fn advance_disk(&mut self, sched: &mut Scheduler<Ev>, node: NodeId) {
        if let Some(d) = self.nodes[node].disk.complete(sched.now()) {
            let gen = self.stamp(d.job);
            sched.after(d.demand, Ev::DiskDone(node as u32, d.job, gen));
        }
    }

    fn advance_nic(&mut self, sched: &mut Scheduler<Ev>, node: NodeId) {
        if let Some(d) = self.nodes[node].nic.complete(sched.now()) {
            let gen = self.stamp(d.job);
            sched.after(d.demand, Ev::NicDone(node as u32, d.job, gen));
        }
    }

    // --- proxy -------------------------------------------------------------

    fn proxy_lookup_done(&mut self, sched: &mut Scheduler<Ev>, req: ReqId) {
        let now = sched.now();
        let r = self.requests.req(req);
        let (proxy_node, object, bytes, line, weight) = (
            r.proxy_node,
            r.object,
            r.response_bytes,
            r.line as usize,
            r.weight,
        );
        let outcome = match object {
            Some(obj) => self.nodes[proxy_node]
                .proxy_mut()
                .expect("proxy role")
                .lookup(obj),
            None => CacheOutcome::Miss,
        };
        self.requests.req_mut(req).cache_outcome = outcome;
        match outcome {
            CacheOutcome::MemHit => {
                let t = self.nodes[proxy_node].nic_time(bytes);
                self.requests.req_mut(req).phase = ReqPhase::ProxySend;
                self.offer_nic(sched, proxy_node, req, Self::weighted(t, weight));
            }
            CacheOutcome::DiskHit => {
                // Squid UFS store: metadata read + object read (two
                // positioned I/Os).
                let node = &self.nodes[proxy_node];
                let t = node.disk_time(bytes) + node.disk_time(4_096);
                self.requests.req_mut(req).phase = ReqPhase::ProxyDiskRead;
                self.offer_disk(sched, proxy_node, req, Self::weighted(t, weight));
            }
            CacheOutcome::Miss => {
                // Forward overhead folded into the app arrival; the proxy
                // relay CPU was part of the lookup slice.
                let Some(app) = self.pick_node(line, Role::App) else {
                    self.fail_request(sched, req);
                    return;
                };
                let r = self.requests.req_mut(req);
                r.app_node = app;
                r.assigned_app = true;
                self.arrive_app(sched, req, now);
            }
        }
    }

    fn proxy_disk_done(&mut self, sched: &mut Scheduler<Ev>, req: ReqId) {
        let r = self.requests.req(req);
        let (proxy_node, bytes, weight) = (r.proxy_node, r.response_bytes, r.weight);
        let t = self.nodes[proxy_node].nic_time(bytes);
        self.requests.req_mut(req).phase = ReqPhase::ProxySend;
        self.offer_nic(sched, proxy_node, req, Self::weighted(t, weight));
    }

    /// Response is back at the proxy (from the app tier): admit to caches
    /// and send to the browser.
    fn proxy_deliver(&mut self, sched: &mut Scheduler<Ev>, req: ReqId) {
        let r = self.requests.req(req);
        let (proxy_node, object, bytes, weight) =
            (r.proxy_node, r.object, r.response_bytes, r.weight);
        if let Some(obj) = object {
            self.nodes[proxy_node]
                .proxy_mut()
                .expect("proxy role")
                .admit(obj, bytes);
        }
        let t = self.nodes[proxy_node].nic_time(bytes);
        self.requests.req_mut(req).phase = ReqPhase::ProxySend;
        self.offer_nic(sched, proxy_node, req, Self::weighted(t, weight));
    }

    fn complete_request(&mut self, sched: &mut Scheduler<Ev>, req: ReqId) {
        let now = sched.now();
        let r = self.requests.remove(req).expect("live request");
        debug_assert!(!r.holds_http && !r.holds_ajp && !r.holds_db_conn && !r.holds_db_sched);
        self.release_node(r.proxy_node);
        if r.assigned_app {
            self.release_node(r.app_node);
        }
        if r.assigned_db {
            self.release_node(r.db_node);
        }
        let w = u64::from(r.weight);
        if self.metrics.phase(now) == tpcw::metrics::Phase::Measure {
            self.line_completed[r.line as usize] += w;
        }
        self.metrics
            .record_completion_weighted(now, r.interaction, r.elapsed(now), w);
        self.total_done += w;
        self.schedule_return(sched, r.browser, r.think);
    }

    /// Refuse a browser's interaction before a request forms (no live
    /// node to route to). Counts as a failed request; the browser goes
    /// back to thinking (`think` was drawn during the admission batch).
    fn refuse_unrouted(
        &mut self,
        sched: &mut Scheduler<Ev>,
        browser: BrowserId,
        think: SimDuration,
    ) {
        let now = sched.now();
        let w = u64::from(self.weight_of(browser));
        self.metrics.record_error_weighted(now, w);
        self.metrics.record_drop_weighted(now, w);
        self.total_failed += w;
        self.schedule_return(sched, browser, think);
    }

    /// Send a browser (or cohort token) back to thinking. Per-browser:
    /// one `Think` event at `now + think`, exactly as before. Cohort: the
    /// token parks in the slot wheel bin nearest its return time, and the
    /// first token to land in an empty slot schedules that slot's single
    /// `CohortRelease` — N tokens returning near the same instant cost
    /// one event, which is the whole point of the model.
    fn schedule_return(
        &mut self,
        sched: &mut Scheduler<Ev>,
        browser: BrowserId,
        think: SimDuration,
    ) {
        let Some(c) = &mut self.cohort else {
            sched.after(think, Ev::Think(browser));
            return;
        };
        let now = sched.now();
        let slot = c.plan.slot_of(now + think);
        let entry = c.slots.entry(slot).or_default();
        if entry.is_empty() {
            let release = c.plan.slot_time(slot);
            sched.after(release.since(now), Ev::CohortRelease(slot));
        }
        entry.push(browser);
    }

    /// A cohort slot fired: every parked token issues its next
    /// interaction, in the deterministic order it parked.
    fn cohort_release(&mut self, sched: &mut Scheduler<Ev>, slot: u32) {
        let batch = match &mut self.cohort {
            Some(c) => c.slots.remove(&slot).unwrap_or_default(),
            None => return,
        };
        for browser in batch {
            self.issue_request(sched, browser);
        }
    }

    /// Apply the `idx`-th scheduled health transition.
    fn apply_health(&mut self, idx: u32) {
        if let Some(change) = self.fault_changes.get(idx as usize).copied() {
            if change.node < self.nodes.len() {
                self.nodes[change.node].health = change.health;
            }
        }
    }

    /// Current health of every node (for fault-aware observers).
    pub fn healths(&self) -> Vec<Health> {
        self.nodes.iter().map(|n| n.health).collect()
    }

    fn fail_request(&mut self, sched: &mut Scheduler<Ev>, req: ReqId) {
        let now = sched.now();
        let r = self.requests.remove(req).expect("live request");
        self.release_node(r.proxy_node);
        if r.assigned_app {
            self.release_node(r.app_node);
        }
        if r.assigned_db {
            self.release_node(r.db_node);
        }
        let w = u64::from(r.weight);
        self.metrics.record_error_weighted(now, w);
        self.metrics.record_drop_weighted(now, w);
        self.total_failed += w;
        self.schedule_return(sched, r.browser, r.think);
    }

    // --- application tier ---------------------------------------------------

    fn arrive_app(&mut self, sched: &mut Scheduler<Ev>, req: ReqId, now: SimTime) {
        let app_node = self.requests.req(req).app_node;
        let gen = self.stamp(req);
        let admission = self.nodes[app_node]
            .app_mut()
            .expect("app role")
            .http_pool
            .offer(now, req, SimDuration::ZERO);
        match admission {
            Admission::Started => {
                sched.immediately(Ev::Granted(app_node as u32, req, gen, Pool::Http));
            }
            Admission::Enqueued => {}
            Admission::Rejected => {
                self.nodes[app_node].app_mut().unwrap().note_refused();
                self.fail_request(sched, req);
            }
        }
    }

    fn http_granted(&mut self, sched: &mut Scheduler<Ev>, req: ReqId) {
        let now = sched.now();
        let r = self.requests.req_mut(req);
        r.holds_http = true;
        let (app_node, needs_servlet) = (r.app_node, r.needs_servlet);
        if needs_servlet {
            let gen = self.stamp(req);
            let admission =
                self.nodes[app_node]
                    .app_mut()
                    .unwrap()
                    .ajp_pool
                    .offer(now, req, SimDuration::ZERO);
            match admission {
                Admission::Started => {
                    sched.immediately(Ev::Granted(app_node as u32, req, gen, Pool::Ajp));
                }
                Admission::Enqueued => {}
                Admission::Rejected => {
                    self.nodes[app_node].app_mut().unwrap().note_refused();
                    self.release_app_threads(sched, req);
                    self.fail_request(sched, req);
                }
            }
        } else {
            self.start_app_cpu(sched, req);
        }
    }

    fn ajp_granted(&mut self, sched: &mut Scheduler<Ev>, req: ReqId) {
        self.requests.req_mut(req).holds_ajp = true;
        self.start_app_cpu(sched, req);
    }

    fn start_app_cpu(&mut self, sched: &mut Scheduler<Ev>, req: ReqId) {
        let r = self.requests.req(req);
        let (app_node, interaction, bytes, weight) =
            (r.app_node, r.interaction, r.response_bytes, r.weight);
        let profile = demand::profile(interaction);
        let base_ms = self
            .rng_service
            .lognormal_shaped(self.cpu_demand_shape, profile.app_cpu_ms.max(0.05));
        let node = &self.nodes[app_node];
        let app = node.app().unwrap();
        let cpu = app
            .servlet_cpu(SimDuration::from_millis_f64(base_ms), bytes)
            .mul_f64(app.scheduling_factor(node.spec.cores));
        let t = node.cpu_time(cpu);
        self.requests.req_mut(req).phase = ReqPhase::AppCpu;
        self.offer_cpu(sched, app_node, req, Self::weighted(t, weight));
    }

    fn app_cpu_done(&mut self, sched: &mut Scheduler<Ev>, req: ReqId) {
        let r = self.requests.req(req);
        let (queries, line) = (r.queries_remaining, r.line as usize);
        if queries > 0 {
            let Some(db) = self.pick_node(line, Role::Db) else {
                self.release_app_threads(sched, req);
                self.fail_request(sched, req);
                return;
            };
            let r = self.requests.req_mut(req);
            r.db_node = db;
            r.assigned_db = true;
            self.arrive_db(sched, req);
        } else {
            self.finish_app(sched, req);
        }
    }

    fn finish_app(&mut self, sched: &mut Scheduler<Ev>, req: ReqId) {
        self.release_app_threads(sched, req);
        self.proxy_deliver(sched, req);
    }

    /// Release HTTP and AJP threads, dispatching queued waiters.
    fn release_app_threads(&mut self, sched: &mut Scheduler<Ev>, req: ReqId) {
        let now = sched.now();
        let r = self.requests.req_mut(req);
        let (app_node, holds_http, holds_ajp) = (r.app_node, r.holds_http, r.holds_ajp);
        r.holds_ajp = false;
        r.holds_http = false;
        if holds_ajp {
            if let Some(d) = self.nodes[app_node]
                .app_mut()
                .unwrap()
                .ajp_pool
                .complete(now)
            {
                let gen = self.stamp(d.job);
                sched.immediately(Ev::Granted(app_node as u32, d.job, gen, Pool::Ajp));
            }
        }
        if holds_http {
            if let Some(d) = self.nodes[app_node]
                .app_mut()
                .unwrap()
                .http_pool
                .complete(now)
            {
                let gen = self.stamp(d.job);
                sched.immediately(Ev::Granted(app_node as u32, d.job, gen, Pool::Http));
            }
        }
    }

    // --- database tier -------------------------------------------------------

    fn arrive_db(&mut self, sched: &mut Scheduler<Ev>, req: ReqId) {
        let now = sched.now();
        let db_node = self.requests.req(req).db_node;
        let gen = self.stamp(req);
        let admission = self.nodes[db_node]
            .db_mut()
            .expect("db role")
            .conn_pool
            .offer(now, req, SimDuration::ZERO);
        match admission {
            Admission::Started => {
                sched.immediately(Ev::Granted(db_node as u32, req, gen, Pool::DbConn));
            }
            Admission::Enqueued => {}
            Admission::Rejected => unreachable!("connection wait queue is unbounded"),
        }
    }

    fn db_conn_granted(&mut self, sched: &mut Scheduler<Ev>, req: ReqId) {
        let now = sched.now();
        let r = self.requests.req_mut(req);
        r.holds_db_conn = true;
        let db_node = r.db_node;
        let gen = self.stamp(req);
        let admission =
            self.nodes[db_node]
                .db_mut()
                .unwrap()
                .run_slots
                .offer(now, req, SimDuration::ZERO);
        match admission {
            Admission::Started => {
                sched.immediately(Ev::Granted(db_node as u32, req, gen, Pool::DbRun));
            }
            Admission::Enqueued => {}
            Admission::Rejected => unreachable!("run-slot queue is unbounded"),
        }
    }

    fn db_run_granted(&mut self, sched: &mut Scheduler<Ev>, req: ReqId) {
        let r = self.requests.req_mut(req);
        r.holds_db_sched = true;
        let (db_node, interaction, weight) = (r.db_node, r.interaction, r.weight);
        let profile = demand::profile(interaction);
        let node = &self.nodes[db_node];
        let cores = node.spec.cores;
        let cost = node.db().unwrap().query_cost(
            &mut self.rng_service,
            profile.db_cpu_ms,
            profile.db_io_prob,
            profile.join_heavy,
            if profile.db_write {
                profile.write_log_kb
            } else {
                0.0
            },
            cores,
        );
        {
            let r = self.requests.req_mut(req);
            r.binlog_spill = cost.binlog_spill;
            r.pending_disk = cost.disk_read;
            r.phase = ReqPhase::DbCpu;
        }
        let t = self.nodes[db_node].cpu_time(cost.cpu);
        self.offer_cpu(sched, db_node, req, Self::weighted(t, weight));
    }

    fn db_cpu_done(&mut self, sched: &mut Scheduler<Ev>, req: ReqId) {
        let r = self.requests.req(req);
        let (db_node, needs_disk, spill, weight) =
            (r.db_node, r.pending_disk, r.binlog_spill, r.weight);
        if needs_disk {
            let t = self.nodes[db_node].disk_time(crate::database::DATA_PAGE_BYTES);
            let r = self.requests.req_mut(req);
            r.phase = ReqPhase::DbDiskRead;
            r.pending_disk = false;
            self.offer_disk(sched, db_node, req, Self::weighted(t, weight));
        } else if spill {
            let t = self.nodes[db_node].disk_seq_time(64 * 1024);
            let r = self.requests.req_mut(req);
            r.phase = ReqPhase::DbBinlogFlush;
            r.binlog_spill = false;
            self.offer_disk(sched, db_node, req, Self::weighted(t, weight));
        } else {
            self.db_query_finished(sched, req);
        }
    }

    fn db_disk_done(&mut self, sched: &mut Scheduler<Ev>, req: ReqId) {
        let r = self.requests.req(req);
        let (db_node, phase, spill, weight) = (r.db_node, r.phase, r.binlog_spill, r.weight);
        if phase == ReqPhase::DbDiskRead && spill {
            let t = self.nodes[db_node].disk_seq_time(64 * 1024);
            let r = self.requests.req_mut(req);
            r.phase = ReqPhase::DbBinlogFlush;
            r.binlog_spill = false;
            self.offer_disk(sched, db_node, req, Self::weighted(t, weight));
        } else {
            self.db_query_finished(sched, req);
        }
    }

    fn db_query_finished(&mut self, sched: &mut Scheduler<Ev>, req: ReqId) {
        let now = sched.now();
        let r = self.requests.req_mut(req);
        // Release run slot then connection, dispatching waiters.
        r.holds_db_sched = false;
        r.holds_db_conn = false;
        let db_node = r.db_node;
        if let Some(d) = self.nodes[db_node]
            .db_mut()
            .unwrap()
            .run_slots
            .complete(now)
        {
            let gen = self.stamp(d.job);
            sched.immediately(Ev::Granted(db_node as u32, d.job, gen, Pool::DbRun));
        }
        if let Some(d) = self.nodes[db_node]
            .db_mut()
            .unwrap()
            .conn_pool
            .complete(now)
        {
            let gen = self.stamp(d.job);
            sched.immediately(Ev::Granted(db_node as u32, d.job, gen, Pool::DbConn));
        }
        let remaining = {
            let r = self.requests.req_mut(req);
            r.queries_remaining -= 1;
            r.queries_remaining
        };
        if remaining > 0 {
            // Next query on the same DB node.
            self.arrive_db(sched, req);
        } else {
            self.finish_app(sched, req);
        }
    }
}

impl Model for ClusterModel {
    type Event = Ev;

    fn handle(&mut self, sched: &mut Scheduler<Ev>, event: Ev) {
        match event {
            Ev::Think(browser) => self.issue_request(sched, browser),
            Ev::CpuDone(node, req, gen) => {
                self.advance_cpu(sched, node as usize);
                if !self.live(req, gen) {
                    return;
                }
                match self.requests.req(req).phase {
                    ReqPhase::ProxyLookup => self.proxy_lookup_done(sched, req),
                    ReqPhase::AppCpu => self.app_cpu_done(sched, req),
                    ReqPhase::DbCpu => self.db_cpu_done(sched, req),
                    other => unreachable!("CpuDone in phase {other:?}"),
                }
            }
            Ev::DiskDone(node, req, gen) => {
                self.advance_disk(sched, node as usize);
                if !self.live(req, gen) {
                    return;
                }
                match self.requests.req(req).phase {
                    ReqPhase::ProxyDiskRead => self.proxy_disk_done(sched, req),
                    ReqPhase::DbDiskRead | ReqPhase::DbBinlogFlush => self.db_disk_done(sched, req),
                    other => unreachable!("DiskDone in phase {other:?}"),
                }
            }
            Ev::NicDone(node, req, gen) => {
                self.advance_nic(sched, node as usize);
                if !self.live(req, gen) {
                    return;
                }
                match self.requests.req(req).phase {
                    ReqPhase::ProxySend => self.complete_request(sched, req),
                    other => unreachable!("NicDone in phase {other:?}"),
                }
            }
            Ev::Granted(_node, req, gen, pool) => {
                if !self.live(req, gen) {
                    return;
                }
                match pool {
                    Pool::Http => self.http_granted(sched, req),
                    Pool::Ajp => self.ajp_granted(sched, req),
                    Pool::DbConn => self.db_conn_granted(sched, req),
                    Pool::DbRun => self.db_run_granted(sched, req),
                }
            }
            Ev::Health(idx) => self.apply_health(idx),
            Ev::CohortRelease(slot) => self.cohort_release(sched, slot),
        }
    }
}

/// Build a [`simkit::engine::Simulation`] for `scenario`, with every
/// browser's first arrival scheduled.
pub fn start_simulation(scenario: &ClusterScenario) -> simkit::engine::Simulation<ClusterModel> {
    let model = ClusterModel::new(scenario, SimTime::ZERO);
    let mut sim = simkit::engine::Simulation::new(model);
    let mut spread_rng = SimRng::new(scenario.seed ^ 0xA5A5_5A5A);
    let think_us = scenario.browsers.think_mean.as_micros().max(1);
    match scenario.load_model {
        LoadModel::PerBrowser => {
            for b in 0..scenario.browsers.population {
                let offset = SimDuration::from_micros(spread_rng.next_below(think_us));
                sim.schedule_at(SimTime::ZERO + offset, Ev::Think(b));
            }
        }
        LoadModel::Cohort { .. } => {
            // Same uniform spread over one mean think time, but tokens
            // park in the slot wheel and each non-empty slot costs one
            // release event — the initial wave is already batched.
            let model = sim.model_mut();
            let c = model.cohort.as_mut().expect("cohort state");
            let plan = c.plan;
            let mut newly_filled = Vec::new();
            for t in 0..plan.tokens {
                let offset = SimDuration::from_micros(spread_rng.next_below(think_us));
                let slot = plan.slot_of(SimTime::ZERO + offset);
                let entry = c.slots.entry(slot).or_default();
                if entry.is_empty() {
                    newly_filled.push(slot);
                }
                entry.push(t);
            }
            for slot in newly_filled {
                sim.schedule_at(plan.slot_time(slot), Ev::CohortRelease(slot));
            }
        }
    }
    if let Some(tl) = &scenario.faults {
        for (k, change) in tl.changes.iter().enumerate() {
            sim.schedule_at(SimTime::ZERO + change.after, Ev::Health(k as u32));
        }
    }
    sim
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClusterConfig;
    use tpcw::metrics::IntervalPlan;

    fn scenario() -> ClusterScenario {
        ClusterScenario::single(Workload::Shopping, 100, IntervalPlan::tiny(), 1)
    }

    #[test]
    fn validate_accepts_defaults() {
        assert_eq!(scenario().validate(), Ok(()));
    }

    #[test]
    fn validate_catches_misaligned_config() {
        let mut s = scenario();
        s.topology = Topology::tiers(2, 1, 1).unwrap(); // config still 1/1/1
        assert!(s.validate().is_err());
    }

    #[test]
    fn validate_catches_bad_work_lines() {
        let mut s = scenario();
        let topology = Topology::tiers(2, 2, 2).unwrap();
        s.config = ClusterConfig::defaults(&topology);
        s.topology = topology;
        // Missing db node in line 0.
        s.lines = Some(vec![vec![0, 2], vec![1, 3, 4, 5]]);
        assert!(s.validate().unwrap_err().contains("no db"));
        // Node in two lines.
        s.lines = Some(vec![vec![0, 2, 4], vec![0, 3, 5]]);
        assert!(s.validate().unwrap_err().contains("two work lines"));
        // Out-of-range node.
        s.lines = Some(vec![vec![0, 2, 4], vec![1, 3, 9]]);
        assert!(s.validate().is_err());
    }

    #[test]
    fn validate_catches_zero_population() {
        let mut s = scenario();
        s.browsers.population = 0;
        assert!(s.validate().is_err());
    }

    #[test]
    fn validate_catches_cohort_misuse() {
        // Zero bins would collapse every think draw into one slot of
        // width zero.
        let mut s = scenario();
        s.load_model = LoadModel::Cohort { bins: 0 };
        assert!(s.validate().unwrap_err().contains("think-time bin"));
        // Markov sessions walk per-browser page state; cohort tokens
        // batch i.i.d. draws, so the combination is refused.
        let mut s = scenario();
        s.load_model = LoadModel::Cohort { bins: 64 };
        s.markov_sessions = true;
        assert!(s.validate().unwrap_err().contains("per-browser load model"));
        // The cohort model alone is valid.
        let mut s = scenario();
        s.load_model = LoadModel::Cohort { bins: 64 };
        assert_eq!(s.validate(), Ok(()));
    }

    #[test]
    fn validate_catches_bad_degraded_spec() {
        let mut s = scenario();
        s.degrade_cpu(0, 0.0);
        assert!(s.validate().is_err());
    }

    #[test]
    fn in_flight_drains_to_zero_when_browsers_stop() {
        // Run past the horizon, then drain: with no new Think events the
        // pipeline must empty and the LB accounting must return to zero.
        let s = scenario();
        let mut sim = start_simulation(&s);
        sim.run_until(SimTime::from_secs(20));
        assert!(sim.model().in_flight() > 0 || sim.model().total_done() > 0);
        // Drain: execute only non-Think events by stepping until only
        // Think events remain is intricate; instead run far ahead — all
        // requests complete within seconds, Think events keep cycling, so
        // in_flight stays bounded by the population.
        sim.run_until(SimTime::from_secs(40));
        assert!(sim.model().in_flight() <= 100);
    }

    #[test]
    fn browsers_pinned_to_lines() {
        let topology = Topology::tiers(2, 2, 2).unwrap();
        let mut s = ClusterScenario::single(Workload::Shopping, 40, IntervalPlan::tiny(), 2);
        s.config = ClusterConfig::defaults(&topology);
        s.topology = topology;
        s.lines = Some(vec![vec![0, 2, 4], vec![1, 3, 5]]);
        let model = ClusterModel::new(&s, SimTime::ZERO);
        assert_eq!(model.line_count(), 2);
        // Even browsers on line 0, odd on line 1.
        assert_eq!(model.line_of_browser(0), 0);
        assert_eq!(model.line_of_browser(1), 1);
        assert_eq!(model.line_of_browser(7), 1);
    }

    #[test]
    fn events_conserve_requests() {
        // total completions + failures + in-flight = total issued.
        let s = scenario();
        let mut sim = start_simulation(&s);
        sim.run_until(SimTime::from_secs(30));
        let m = sim.model();
        let issued = m.total_done() + m.total_failed() + m.in_flight() as u64;
        // Every Think event issues exactly one request; the first wave is
        // `population` strong, so issued >= some completions happened.
        assert!(issued >= m.total_done());
        assert!(m.total_done() > 0);
    }
}
