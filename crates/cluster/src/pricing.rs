//! System pricing: the TPC-W Dollars/WIPS metric.
//!
//! TPC-W's two primary metrics are WIPS and a price/performance ratio,
//! Dollars/WIPS (§II.C of the paper). This module prices a cluster the
//! TPC way — total cost of ownership of every component — so experiments
//! can report both metrics and capacity planning can trade throughput
//! against cost.

use crate::config::{Role, Topology};

/// Component prices in dollars (2002-era defaults).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PriceList {
    /// One commodity dual-CPU server.
    pub server: f64,
    /// Per-machine share of the switch/network infrastructure.
    pub network_per_node: f64,
    /// Software licensing per node of each tier (open-source = 0, but
    /// support contracts are real).
    pub proxy_software: f64,
    pub app_software: f64,
    pub db_software: f64,
    /// Fixed costs: racks, console, installation.
    pub fixed: f64,
}

impl PriceList {
    /// Defaults matching the paper's environment: commodity dual-Athlon
    /// boxes (~$2,500 in 2002), cheap 100 Mbps switching, open-source
    /// software with modest support pricing.
    pub fn hpdc04() -> Self {
        PriceList {
            server: 2_500.0,
            network_per_node: 150.0,
            proxy_software: 0.0,
            app_software: 250.0,
            db_software: 500.0,
            fixed: 2_000.0,
        }
    }

    fn software_for(&self, role: Role) -> f64 {
        match role {
            Role::Proxy => self.proxy_software,
            Role::App => self.app_software,
            Role::Db => self.db_software,
        }
    }

    /// Total system cost of a topology (plus `extra_nodes` non-serving
    /// machines, e.g. the load generators, which TPC-W prices too).
    pub fn system_cost(&self, topology: &Topology, extra_nodes: usize) -> f64 {
        let servers = topology.len() + extra_nodes;
        let hardware = servers as f64 * (self.server + self.network_per_node);
        let software: f64 = topology.roles().iter().map(|r| self.software_for(*r)).sum();
        self.fixed + hardware + software
    }

    /// The TPC-W price/performance metric.
    pub fn dollars_per_wips(&self, topology: &Topology, extra_nodes: usize, wips: f64) -> f64 {
        if wips <= 0.0 {
            f64::INFINITY
        } else {
            self.system_cost(topology, extra_nodes) / wips
        }
    }
}

impl Default for PriceList {
    fn default() -> Self {
        PriceList::hpdc04()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hand_computed_cost() {
        let prices = PriceList::hpdc04();
        let t = Topology::tiers(1, 1, 1).unwrap();
        // 3 servers + 1 EB machine, software 0 + 250 + 500, fixed 2000.
        let expected = 2_000.0 + 4.0 * (2_500.0 + 150.0) + 750.0;
        assert!((prices.system_cost(&t, 1) - expected).abs() < 1e-9);
    }

    #[test]
    fn dollars_per_wips_scales() {
        let prices = PriceList::hpdc04();
        let t = Topology::tiers(1, 1, 1).unwrap();
        let at_100 = prices.dollars_per_wips(&t, 1, 100.0);
        let at_200 = prices.dollars_per_wips(&t, 1, 200.0);
        assert!((at_100 / at_200 - 2.0).abs() < 1e-9);
        assert!(prices.dollars_per_wips(&t, 1, 0.0).is_infinite());
    }

    #[test]
    fn bigger_cluster_costs_more() {
        let prices = PriceList::hpdc04();
        let small = Topology::tiers(1, 1, 1).unwrap();
        let big = Topology::tiers(3, 3, 2).unwrap();
        assert!(prices.system_cost(&big, 1) > prices.system_cost(&small, 1));
    }

    #[test]
    fn reconfiguration_does_not_change_hardware_cost() {
        // Moving a node between tiers changes only software licensing.
        let prices = PriceList::hpdc04();
        let before = Topology::tiers(4, 2, 1).unwrap();
        let after = before.reassign(0, Role::App).unwrap();
        let delta = prices.system_cost(&after, 0) - prices.system_cost(&before, 0);
        assert!(
            (delta - (prices.app_software - prices.proxy_software)).abs() < 1e-9,
            "delta {delta}"
        );
    }
}
