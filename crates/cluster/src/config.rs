//! Cluster topology and full configuration.
//!
//! A [`Topology`] assigns each server node a tier role; a
//! [`ClusterConfig`] carries the per-node tunable parameters, aligned with
//! the topology's node list. The automatic reconfiguration experiments of
//! Section IV change the topology; the tuning experiments of Section III
//! change the configuration.

use crate::params::{DbParams, ProxyParams, WebParams};
use std::fmt;

/// Tier role of a server node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Role {
    /// Tier 1: Squid proxy / presentation.
    Proxy,
    /// Tier 2: Tomcat application server.
    App,
    /// Tier 3: MySQL database.
    Db,
}

impl Role {
    pub const ALL: [Role; 3] = [Role::Proxy, Role::App, Role::Db];

    pub fn name(self) -> &'static str {
        match self {
            Role::Proxy => "proxy",
            Role::App => "app",
            Role::Db => "db",
        }
    }
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Dense identifier of a server node within a topology.
pub type NodeId = usize;

/// The tier layout of the cluster's server machines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    roles: Vec<Role>,
}

impl Topology {
    /// Build from an explicit role list.
    pub fn new(roles: Vec<Role>) -> Result<Topology, TopologyError> {
        let t = Topology { roles };
        t.validate()?;
        Ok(t)
    }

    /// `p` proxies, `a` app servers, `d` databases (nodes numbered proxies
    /// first, then app, then db).
    pub fn tiers(p: usize, a: usize, d: usize) -> Result<Topology, TopologyError> {
        let mut roles = Vec::with_capacity(p + a + d);
        roles.extend(std::iter::repeat_n(Role::Proxy, p));
        roles.extend(std::iter::repeat_n(Role::App, a));
        roles.extend(std::iter::repeat_n(Role::Db, d));
        Topology::new(roles)
    }

    /// The paper's single-work-line setup (one node per tier).
    // A 1/1/1 topology is statically valid (every tier populated);
    // covered by `single_topology` tests.
    #[allow(clippy::expect_used)]
    pub fn single() -> Topology {
        Topology::tiers(1, 1, 1).expect("1/1/1 is valid")
    }

    fn validate(&self) -> Result<(), TopologyError> {
        for role in Role::ALL {
            if self.count(role) == 0 {
                return Err(TopologyError::EmptyTier(role));
            }
        }
        Ok(())
    }

    pub fn len(&self) -> usize {
        self.roles.len()
    }

    pub fn is_empty(&self) -> bool {
        self.roles.is_empty()
    }

    pub fn role(&self, node: NodeId) -> Role {
        self.roles[node]
    }

    pub fn roles(&self) -> &[Role] {
        &self.roles
    }

    /// Node ids of one tier, ascending.
    pub fn nodes_in(&self, role: Role) -> Vec<NodeId> {
        self.roles
            .iter()
            .enumerate()
            .filter(|(_, r)| **r == role)
            .map(|(i, _)| i)
            .collect()
    }

    /// Number of nodes in one tier — the paper's `M(t)`.
    pub fn count(&self, role: Role) -> usize {
        self.roles.iter().filter(|r| **r == role).count()
    }

    /// Move `node` to `new_role` (Section IV reconfiguration). Fails if it
    /// would empty the node's current tier — the algorithm's `M(tier) > 1`
    /// guard.
    pub fn reassign(&self, node: NodeId, new_role: Role) -> Result<Topology, TopologyError> {
        if node >= self.roles.len() {
            return Err(TopologyError::NoSuchNode(node));
        }
        let old = self.roles[node];
        if old == new_role {
            return Err(TopologyError::AlreadyInTier(node, new_role));
        }
        if self.count(old) <= 1 {
            return Err(TopologyError::WouldEmptyTier(old));
        }
        let mut roles = self.roles.clone();
        roles[node] = new_role;
        Topology::new(roles)
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}p/{}a/{}d",
            self.count(Role::Proxy),
            self.count(Role::App),
            self.count(Role::Db)
        )
    }
}

/// Topology construction/reassignment failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyError {
    EmptyTier(Role),
    WouldEmptyTier(Role),
    NoSuchNode(NodeId),
    AlreadyInTier(NodeId, Role),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::EmptyTier(r) => write!(f, "tier {r} has no nodes"),
            TopologyError::WouldEmptyTier(r) => write!(f, "reassignment would empty tier {r}"),
            TopologyError::NoSuchNode(n) => write!(f, "node {n} does not exist"),
            TopologyError::AlreadyInTier(n, r) => write!(f, "node {n} is already in tier {r}"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// Tunable parameters of one node, tagged by role.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NodeParams {
    Proxy(ProxyParams),
    App(WebParams),
    Db(DbParams),
}

impl NodeParams {
    /// The default configuration for a role.
    pub fn default_for(role: Role) -> NodeParams {
        match role {
            Role::Proxy => NodeParams::Proxy(ProxyParams::default_config()),
            Role::App => NodeParams::App(WebParams::default_config()),
            Role::Db => NodeParams::Db(DbParams::default_config()),
        }
    }

    pub fn role(&self) -> Role {
        match self {
            NodeParams::Proxy(_) => Role::Proxy,
            NodeParams::App(_) => Role::App,
            NodeParams::Db(_) => Role::Db,
        }
    }

    pub fn as_proxy(&self) -> Option<&ProxyParams> {
        match self {
            NodeParams::Proxy(p) => Some(p),
            _ => None,
        }
    }

    pub fn as_app(&self) -> Option<&WebParams> {
        match self {
            NodeParams::App(p) => Some(p),
            _ => None,
        }
    }

    pub fn as_db(&self) -> Option<&DbParams> {
        match self {
            NodeParams::Db(p) => Some(p),
            _ => None,
        }
    }
}

/// Full cluster configuration: one [`NodeParams`] per topology node.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    node_params: Vec<NodeParams>,
}

impl ClusterConfig {
    /// Default parameters for every node of `topology`.
    pub fn defaults(topology: &Topology) -> ClusterConfig {
        ClusterConfig {
            node_params: topology
                .roles()
                .iter()
                .map(|r| NodeParams::default_for(*r))
                .collect(),
        }
    }

    /// Uniform per-tier configuration (parameter-duplication style): every
    /// node of a tier gets the same parameters.
    pub fn uniform(
        topology: &Topology,
        proxy: ProxyParams,
        app: WebParams,
        db: DbParams,
    ) -> ClusterConfig {
        ClusterConfig {
            node_params: topology
                .roles()
                .iter()
                .map(|r| match r {
                    Role::Proxy => NodeParams::Proxy(proxy),
                    Role::App => NodeParams::App(app),
                    Role::Db => NodeParams::Db(db),
                })
                .collect(),
        }
    }

    /// Build from explicit per-node parameters; roles must match.
    pub fn new(topology: &Topology, node_params: Vec<NodeParams>) -> Result<Self, ConfigError> {
        if node_params.len() != topology.len() {
            return Err(ConfigError::Arity(topology.len(), node_params.len()));
        }
        for (i, (p, r)) in node_params.iter().zip(topology.roles()).enumerate() {
            if p.role() != *r {
                return Err(ConfigError::RoleMismatch(i, *r, p.role()));
            }
        }
        Ok(ClusterConfig { node_params })
    }

    pub fn node(&self, id: NodeId) -> &NodeParams {
        &self.node_params[id]
    }

    pub fn node_mut(&mut self, id: NodeId) -> &mut NodeParams {
        &mut self.node_params[id]
    }

    pub fn nodes(&self) -> &[NodeParams] {
        &self.node_params
    }

    pub fn len(&self) -> usize {
        self.node_params.len()
    }

    pub fn is_empty(&self) -> bool {
        self.node_params.is_empty()
    }

    /// Adapt this config to a reassigned topology: nodes keep their params
    /// where the role is unchanged; a node whose role changed gets the
    /// *defaults* of the new role (a freshly-started server process).
    pub fn adapt_to(&self, topology: &Topology) -> ClusterConfig {
        let node_params = topology
            .roles()
            .iter()
            .enumerate()
            .map(|(i, r)| match self.node_params.get(i) {
                Some(p) if p.role() == *r => *p,
                _ => NodeParams::default_for(*r),
            })
            .collect();
        ClusterConfig { node_params }
    }
}

/// Configuration construction failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    Arity(usize, usize),
    RoleMismatch(NodeId, Role, Role),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Arity(want, got) => write!(f, "expected {want} node params, got {got}"),
            ConfigError::RoleMismatch(n, want, got) => {
                write!(f, "node {n}: topology says {want}, params say {got}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiers_builds_in_order() {
        let t = Topology::tiers(2, 3, 1).unwrap();
        assert_eq!(t.len(), 6);
        assert_eq!(t.nodes_in(Role::Proxy), vec![0, 1]);
        assert_eq!(t.nodes_in(Role::App), vec![2, 3, 4]);
        assert_eq!(t.nodes_in(Role::Db), vec![5]);
        assert_eq!(format!("{t}"), "2p/3a/1d");
    }

    #[test]
    fn empty_tier_rejected() {
        assert_eq!(
            Topology::tiers(0, 1, 1),
            Err(TopologyError::EmptyTier(Role::Proxy))
        );
        assert_eq!(
            Topology::tiers(1, 1, 0),
            Err(TopologyError::EmptyTier(Role::Db))
        );
    }

    #[test]
    fn reassign_moves_node() {
        let t = Topology::tiers(4, 2, 1).unwrap();
        let t2 = t.reassign(0, Role::App).unwrap();
        assert_eq!(t2.count(Role::Proxy), 3);
        assert_eq!(t2.count(Role::App), 3);
        assert_eq!(t2.role(0), Role::App);
        // Original untouched.
        assert_eq!(t.count(Role::Proxy), 4);
    }

    #[test]
    fn reassign_guards() {
        let t = Topology::single();
        assert_eq!(
            t.reassign(0, Role::App),
            Err(TopologyError::WouldEmptyTier(Role::Proxy))
        );
        assert_eq!(t.reassign(9, Role::App), Err(TopologyError::NoSuchNode(9)));
        assert_eq!(
            t.reassign(0, Role::Proxy),
            Err(TopologyError::AlreadyInTier(0, Role::Proxy))
        );
    }

    #[test]
    fn defaults_align_with_roles() {
        let t = Topology::tiers(1, 2, 1).unwrap();
        let c = ClusterConfig::defaults(&t);
        assert_eq!(c.len(), 4);
        assert!(c.node(0).as_proxy().is_some());
        assert!(c.node(1).as_app().is_some());
        assert!(c.node(2).as_app().is_some());
        assert!(c.node(3).as_db().is_some());
    }

    #[test]
    fn new_validates_roles() {
        let t = Topology::single();
        let bad = vec![
            NodeParams::default_for(Role::App), // should be Proxy
            NodeParams::default_for(Role::App),
            NodeParams::default_for(Role::Db),
        ];
        assert!(matches!(
            ClusterConfig::new(&t, bad),
            Err(ConfigError::RoleMismatch(0, Role::Proxy, Role::App))
        ));
        let short = vec![NodeParams::default_for(Role::Proxy)];
        assert!(matches!(
            ClusterConfig::new(&t, short),
            Err(ConfigError::Arity(3, 1))
        ));
    }

    #[test]
    fn adapt_to_keeps_matching_roles_and_defaults_changed_ones() {
        let t = Topology::tiers(2, 2, 1).unwrap();
        let mut c = ClusterConfig::defaults(&t);
        // Customize node 0 (proxy) and node 2 (app).
        if let NodeParams::Proxy(p) = c.node_mut(0) {
            p.cache_mem = 33;
        }
        if let NodeParams::App(a) = c.node_mut(2) {
            a.max_processors = 77;
        }
        let t2 = t.reassign(0, Role::App).unwrap();
        let c2 = c.adapt_to(&t2);
        // Node 0 changed role: fresh app defaults.
        assert_eq!(c2.node(0).as_app().unwrap().max_processors, 20);
        // Node 2 kept its customization.
        assert_eq!(c2.node(2).as_app().unwrap().max_processors, 77);
        // Node 1 still proxy defaults.
        assert_eq!(c2.node(1).as_proxy().unwrap().cache_mem, 8);
    }

    #[test]
    fn uniform_applies_per_tier() {
        let t = Topology::tiers(2, 2, 2).unwrap();
        let mut proxy = ProxyParams::default_config();
        proxy.cache_mem = 42;
        let c = ClusterConfig::uniform(
            &t,
            proxy,
            WebParams::default_config(),
            DbParams::default_config(),
        );
        assert_eq!(c.node(0).as_proxy().unwrap().cache_mem, 42);
        assert_eq!(c.node(1).as_proxy().unwrap().cache_mem, 42);
    }
}
