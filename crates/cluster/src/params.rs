//! The 23 tunable parameters of Table 3, with their defaults and tuning
//! ranges.
//!
//! Parameter names, defaults and units follow the paper exactly. The
//! tuning ranges are chosen so every tuned value the paper reports is
//! reachable with headroom on both sides. Internal consistency (for
//! example `minProcessors <= maxProcessors`) is *not* enforced at
//! construction — the tuner explores freely, and [`WebParams::http_pool`]
//! resolves conflicts the way the real servers do (the max acts as a cap).

/// Metadata of one tunable parameter: what the tuner needs to know.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TunableDef {
    /// Paper's parameter name.
    pub name: &'static str,
    /// Lower bound (inclusive).
    pub min: i64,
    /// Upper bound (inclusive).
    pub max: i64,
    /// The default configuration value (Table 3 "Default config." column).
    pub default: i64,
}

impl TunableDef {
    /// Clamp a raw value into this parameter's range.
    pub fn clamp(&self, v: i64) -> i64 {
        v.clamp(self.min, self.max)
    }

    /// True if `v` lies within the bounds.
    pub fn contains(&self, v: i64) -> bool {
        (self.min..=self.max).contains(&v)
    }
}

// ---------------------------------------------------------------------------
// Proxy server (Squid) — 7 parameters
// ---------------------------------------------------------------------------

/// Squid proxy tunables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProxyParams {
    /// `cache_mem`: memory cache size, MB.
    pub cache_mem: i64,
    /// `cache_swap_low`: disk-store eviction low watermark, percent.
    pub cache_swap_low: i64,
    /// `cache_swap_high`: disk-store eviction high watermark, percent.
    pub cache_swap_high: i64,
    /// `maximum_object_size`: largest object cached at all, KB.
    pub maximum_object_size: i64,
    /// `minimum_object_size`: smallest object cached, KB (0 = no minimum).
    pub minimum_object_size: i64,
    /// `maximum_object_size_in_memory`: largest object held in the memory
    /// store, KB.
    pub maximum_object_size_in_memory: i64,
    /// `store_objects_per_bucket`: hash-table occupancy target.
    pub store_objects_per_bucket: i64,
}

/// Tunable metadata for the proxy, in Table 3 order.
pub const PROXY_TUNABLES: [TunableDef; 7] = [
    TunableDef {
        name: "cache_mem",
        min: 1,
        max: 64,
        default: 8,
    },
    TunableDef {
        name: "cache_swap_low",
        min: 50,
        max: 97,
        default: 90,
    },
    TunableDef {
        name: "cache_swap_high",
        min: 55,
        max: 99,
        default: 95,
    },
    TunableDef {
        name: "maximum_object_size",
        min: 256,
        max: 16_384,
        default: 4_096,
    },
    TunableDef {
        name: "minimum_object_size",
        min: 0,
        max: 2_048,
        default: 0,
    },
    TunableDef {
        name: "maximum_object_size_in_memory",
        min: 1,
        max: 4_096,
        default: 8,
    },
    TunableDef {
        name: "store_objects_per_bucket",
        min: 5,
        max: 500,
        default: 20,
    },
];

impl ProxyParams {
    /// Table 3 defaults.
    // Each tunable's default lies inside its own [min, max] by
    // construction of the table; covered by `defaults_are_valid` tests.
    #[allow(clippy::expect_used)]
    pub fn default_config() -> Self {
        Self::from_values(&PROXY_TUNABLES.map(|t| t.default)).expect("defaults valid")
    }

    /// Build from a value vector in [`PROXY_TUNABLES`] order.
    pub fn from_values(v: &[i64]) -> Result<Self, ParamError> {
        check_values(v, &PROXY_TUNABLES)?;
        Ok(ProxyParams {
            cache_mem: v[0],
            cache_swap_low: v[1],
            cache_swap_high: v[2],
            maximum_object_size: v[3],
            minimum_object_size: v[4],
            maximum_object_size_in_memory: v[5],
            store_objects_per_bucket: v[6],
        })
    }

    /// Export as a value vector in [`PROXY_TUNABLES`] order.
    pub fn to_values(&self) -> [i64; 7] {
        [
            self.cache_mem,
            self.cache_swap_low,
            self.cache_swap_high,
            self.maximum_object_size,
            self.minimum_object_size,
            self.maximum_object_size_in_memory,
            self.store_objects_per_bucket,
        ]
    }

    /// Resolve inconsistent watermarks the way Squid does (high >= low).
    pub fn effective_swap_watermarks(&self) -> (i64, i64) {
        let low = self.cache_swap_low;
        let high = self.cache_swap_high.max(low + 1).min(100);
        (low, high)
    }

    /// Memory-store capacity in bytes.
    pub fn cache_mem_bytes(&self) -> u64 {
        (self.cache_mem.max(0) as u64) * 1024 * 1024
    }
}

// ---------------------------------------------------------------------------
// Web / application server (Tomcat) — 7 parameters
// ---------------------------------------------------------------------------

/// Tomcat HTTP + AJP connector tunables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WebParams {
    /// `minProcessors`: threads kept warm in the HTTP pool.
    pub min_processors: i64,
    /// `maxProcessors`: maximum HTTP pool size.
    pub max_processors: i64,
    /// `acceptCount`: HTTP accept-queue length.
    pub accept_count: i64,
    /// `bufferSize`: per-connection I/O buffer, bytes.
    pub buffer_size: i64,
    /// `AJPminProcessors`: warm AJP worker threads.
    pub ajp_min_processors: i64,
    /// `AJPmaxProcessors`: maximum AJP pool size.
    pub ajp_max_processors: i64,
    /// `AJPacceptCount`: AJP accept-queue length.
    pub ajp_accept_count: i64,
}

/// Tunable metadata for the web server, in Table 3 order.
pub const WEB_TUNABLES: [TunableDef; 7] = [
    TunableDef {
        name: "minProcessors",
        min: 1,
        max: 512,
        default: 5,
    },
    TunableDef {
        name: "maxProcessors",
        min: 1,
        max: 512,
        default: 20,
    },
    TunableDef {
        name: "acceptCount",
        min: 1,
        max: 1_024,
        default: 10,
    },
    TunableDef {
        name: "bufferSize",
        min: 512,
        max: 16_384,
        default: 2_048,
    },
    TunableDef {
        name: "AJPminProcessors",
        min: 1,
        max: 512,
        default: 5,
    },
    TunableDef {
        name: "AJPmaxProcessors",
        min: 1,
        max: 512,
        default: 20,
    },
    TunableDef {
        name: "AJPacceptCount",
        min: 1,
        max: 1_024,
        default: 10,
    },
];

/// Effective (conflict-resolved) thread-pool sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EffectivePool {
    pub min: u32,
    pub max: u32,
    pub accept: u32,
}

impl WebParams {
    /// Table 3 defaults.
    // Each tunable's default lies inside its own [min, max] by
    // construction of the table; covered by `defaults_are_valid` tests.
    #[allow(clippy::expect_used)]
    pub fn default_config() -> Self {
        Self::from_values(&WEB_TUNABLES.map(|t| t.default)).expect("defaults valid")
    }

    pub fn from_values(v: &[i64]) -> Result<Self, ParamError> {
        check_values(v, &WEB_TUNABLES)?;
        Ok(WebParams {
            min_processors: v[0],
            max_processors: v[1],
            accept_count: v[2],
            buffer_size: v[3],
            ajp_min_processors: v[4],
            ajp_max_processors: v[5],
            ajp_accept_count: v[6],
        })
    }

    pub fn to_values(&self) -> [i64; 7] {
        [
            self.min_processors,
            self.max_processors,
            self.accept_count,
            self.buffer_size,
            self.ajp_min_processors,
            self.ajp_max_processors,
            self.ajp_accept_count,
        ]
    }

    /// Effective HTTP pool: min never exceeds max (max acts as the cap,
    /// mirroring Tomcat's behaviour when misconfigured).
    pub fn http_pool(&self) -> EffectivePool {
        let max = self.max_processors.max(1) as u32;
        EffectivePool {
            min: (self.min_processors.max(1) as u32).min(max),
            max,
            accept: self.accept_count.max(1) as u32,
        }
    }

    /// Effective AJP pool.
    pub fn ajp_pool(&self) -> EffectivePool {
        let max = self.ajp_max_processors.max(1) as u32;
        EffectivePool {
            min: (self.ajp_min_processors.max(1) as u32).min(max),
            max,
            accept: self.ajp_accept_count.max(1) as u32,
        }
    }
}

// ---------------------------------------------------------------------------
// Database server (MySQL) — 9 parameters
// ---------------------------------------------------------------------------

/// MySQL tunables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DbParams {
    /// `binlog_cache_size`: per-transaction binary-log cache, bytes.
    pub binlog_cache_size: i64,
    /// `delayed_insert_limit`: rows handed over per delayed-insert batch.
    pub delayed_insert_limit: i64,
    /// `max_connections`: concurrent client connections.
    pub max_connections: i64,
    /// `delayed_queue_size`: queued rows for delayed inserts.
    pub delayed_queue_size: i64,
    /// `join_buffer_size`: per-join buffer, bytes.
    pub join_buffer_size: i64,
    /// `net_buffer_length`: result-set network chunk, bytes.
    pub net_buffer_length: i64,
    /// `table_cache`: open table descriptors kept cached.
    pub table_cache: i64,
    /// `thread_concurrency` (`thread_con`): desired concurrently-running
    /// threads inside the server.
    pub thread_concurrency: i64,
    /// `thread_stack`: per-thread stack, bytes.
    pub thread_stack: i64,
}

/// Tunable metadata for the database, in Table 3 order.
pub const DB_TUNABLES: [TunableDef; 9] = [
    TunableDef {
        name: "binlog_cache_size",
        min: 4_096,
        max: 1_048_576,
        default: 32_768,
    },
    TunableDef {
        name: "delayed_insert_limit",
        min: 10,
        max: 1_000,
        default: 100,
    },
    TunableDef {
        name: "max_connections",
        min: 10,
        max: 1_000,
        default: 100,
    },
    TunableDef {
        name: "delayed_queue_size",
        min: 100,
        max: 20_000,
        default: 1_000,
    },
    TunableDef {
        name: "join_buffer_size",
        min: 131_072,
        max: 16_777_216,
        default: 8_388_600,
    },
    TunableDef {
        name: "net_buffer_length",
        min: 1_024,
        max: 65_536,
        default: 16_384,
    },
    TunableDef {
        name: "table_cache",
        min: 16,
        max: 2_048,
        default: 64,
    },
    TunableDef {
        name: "thread_con",
        min: 1,
        max: 512,
        default: 10,
    },
    TunableDef {
        name: "thread_stack",
        min: 32_768,
        max: 2_097_152,
        default: 65_535,
    },
];

impl DbParams {
    /// Table 3 defaults.
    // Each tunable's default lies inside its own [min, max] by
    // construction of the table; covered by `defaults_are_valid` tests.
    #[allow(clippy::expect_used)]
    pub fn default_config() -> Self {
        Self::from_values(&DB_TUNABLES.map(|t| t.default)).expect("defaults valid")
    }

    pub fn from_values(v: &[i64]) -> Result<Self, ParamError> {
        check_values(v, &DB_TUNABLES)?;
        Ok(DbParams {
            binlog_cache_size: v[0],
            delayed_insert_limit: v[1],
            max_connections: v[2],
            delayed_queue_size: v[3],
            join_buffer_size: v[4],
            net_buffer_length: v[5],
            table_cache: v[6],
            thread_concurrency: v[7],
            thread_stack: v[8],
        })
    }

    pub fn to_values(&self) -> [i64; 9] {
        [
            self.binlog_cache_size,
            self.delayed_insert_limit,
            self.max_connections,
            self.delayed_queue_size,
            self.join_buffer_size,
            self.net_buffer_length,
            self.table_cache,
            self.thread_concurrency,
            self.thread_stack,
        ]
    }
}

// ---------------------------------------------------------------------------
// Shared plumbing
// ---------------------------------------------------------------------------

/// Validation failure when building params from a value vector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParamError {
    /// Wrong number of values (expected, got).
    Arity(usize, usize),
    /// A value fell outside its bounds (name, value).
    OutOfBounds(&'static str, i64),
}

impl std::fmt::Display for ParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParamError::Arity(want, got) => write!(f, "expected {want} values, got {got}"),
            ParamError::OutOfBounds(name, v) => write!(f, "{name} = {v} out of bounds"),
        }
    }
}

impl std::error::Error for ParamError {}

fn check_values(v: &[i64], defs: &[TunableDef]) -> Result<(), ParamError> {
    if v.len() != defs.len() {
        return Err(ParamError::Arity(defs.len(), v.len()));
    }
    for (x, d) in v.iter().zip(defs) {
        if !d.contains(*x) {
            return Err(ParamError::OutOfBounds(d.name, *x));
        }
    }
    Ok(())
}

/// Total number of tunables across one node of each tier (Table 3 rows).
pub const TOTAL_TUNABLES_PER_WORKLINE: usize =
    PROXY_TUNABLES.len() + WEB_TUNABLES.len() + DB_TUNABLES.len();

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_has_23_parameters() {
        assert_eq!(TOTAL_TUNABLES_PER_WORKLINE, 23);
    }

    #[test]
    fn defaults_match_table3() {
        let p = ProxyParams::default_config();
        assert_eq!(p.cache_mem, 8);
        assert_eq!(p.cache_swap_low, 90);
        assert_eq!(p.cache_swap_high, 95);
        assert_eq!(p.maximum_object_size, 4_096);
        assert_eq!(p.minimum_object_size, 0);
        assert_eq!(p.maximum_object_size_in_memory, 8);
        assert_eq!(p.store_objects_per_bucket, 20);

        let w = WebParams::default_config();
        assert_eq!(w.min_processors, 5);
        assert_eq!(w.max_processors, 20);
        assert_eq!(w.accept_count, 10);
        assert_eq!(w.buffer_size, 2_048);
        assert_eq!(w.ajp_max_processors, 20);

        let d = DbParams::default_config();
        assert_eq!(d.binlog_cache_size, 32_768);
        assert_eq!(d.max_connections, 100);
        assert_eq!(d.join_buffer_size, 8_388_600);
        assert_eq!(d.table_cache, 64);
        assert_eq!(d.thread_concurrency, 10);
        assert_eq!(d.thread_stack, 65_535);
    }

    #[test]
    fn paper_tuned_values_are_within_bounds() {
        // Every tuned value from Table 3 must be reachable.
        let tuned_proxy = [
            [13, 91, 96, 4_096, 0, 6, 15],
            [17, 86, 96, 4_096, 50, 256, 25],
            [21, 91, 96, 5_888, 306, 2_560, 105],
        ];
        for cfg in tuned_proxy {
            assert!(ProxyParams::from_values(&cfg).is_ok(), "{cfg:?}");
        }
        let tuned_web = [
            [1, 11, 6, 2_049, 6, 86, 76],
            [16, 16, 21, 3_585, 26, 296, 306],
            [102, 131, 136, 6_657, 136, 161, 671],
        ];
        for cfg in tuned_web {
            assert!(WebParams::from_values(&cfg).is_ok(), "{cfg:?}");
        }
        let tuned_db = [
            [63_488, 200, 201, 2_600, 407_552, 31_744, 873, 81, 102_400],
            [
                153_600, 400, 451, 9_100, 407_552, 38_912, 905, 91, 1_018_880,
            ],
            [284_672, 700, 701, 7_100, 407_552, 34_816, 761, 76, 773_120],
        ];
        for cfg in tuned_db {
            assert!(DbParams::from_values(&cfg).is_ok(), "{cfg:?}");
        }
    }

    #[test]
    fn value_vector_roundtrip() {
        let p = ProxyParams::default_config();
        assert_eq!(ProxyParams::from_values(&p.to_values()).unwrap(), p);
        let w = WebParams::default_config();
        assert_eq!(WebParams::from_values(&w.to_values()).unwrap(), w);
        let d = DbParams::default_config();
        assert_eq!(DbParams::from_values(&d.to_values()).unwrap(), d);
    }

    #[test]
    fn from_values_validates() {
        assert!(matches!(
            ProxyParams::from_values(&[1, 2]),
            Err(ParamError::Arity(7, 2))
        ));
        let mut v = PROXY_TUNABLES.map(|t| t.default);
        v[0] = 10_000; // cache_mem out of range
        assert!(matches!(
            ProxyParams::from_values(&v),
            Err(ParamError::OutOfBounds("cache_mem", 10_000))
        ));
    }

    #[test]
    fn http_pool_resolves_min_above_max() {
        let mut w = WebParams::default_config();
        w.min_processors = 100;
        w.max_processors = 20;
        let pool = w.http_pool();
        assert_eq!(pool.min, 20);
        assert_eq!(pool.max, 20);
    }

    #[test]
    fn swap_watermarks_resolve_inversion() {
        let mut p = ProxyParams::default_config();
        p.cache_swap_low = 95;
        p.cache_swap_high = 60;
        let (low, high) = p.effective_swap_watermarks();
        assert!(high > low);
        assert!(high <= 100);
    }

    #[test]
    fn clamp_and_contains() {
        let d = TunableDef {
            name: "x",
            min: 10,
            max: 20,
            default: 15,
        };
        assert_eq!(d.clamp(5), 10);
        assert_eq!(d.clamp(25), 20);
        assert_eq!(d.clamp(12), 12);
        assert!(d.contains(10) && d.contains(20) && !d.contains(9));
    }
}
