//! The static-object universe: deterministic per-object sizes.
//!
//! Each cacheable object (product page, image set, static page) has a fixed
//! size derived from its id by hashing — the same object always has the
//! same size, across runs and across nodes, without storing a catalogue in
//! memory. Sizes follow a lognormal-like distribution (median ~8 KB, heavy
//! tail to ~2 MB), the classic web-object shape: this is what makes
//! `maximum_object_size_in_memory` (default 8 KB!) a meaningful knob.

use crate::cache::ObjectId;

/// Median object size in KB.
const MEDIAN_KB: f64 = 8.0;
/// Lognormal sigma (shape).
const SIGMA: f64 = 1.2;
/// Clamp range in bytes.
const MIN_BYTES: u64 = 512;
const MAX_BYTES: u64 = 2 * 1024 * 1024;

#[inline]
fn hash64(mut x: u64) -> u64 {
    // SplitMix64 finaliser — good avalanche, cheap.
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Inverse standard-normal CDF (Acklam's rational approximation; relative
/// error < 1.15e-9 — far more than enough for size synthesis).
#[allow(clippy::excessive_precision)] // published approximation constants
fn inv_norm_cdf(p: f64) -> f64 {
    debug_assert!((0.0..1.0).contains(&p));
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383577518672690e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Deterministic size of object `id`, in bytes.
pub fn object_size_bytes(id: ObjectId) -> u64 {
    let h = hash64(id);
    // Map to (0,1) strictly.
    let u = ((h >> 11) as f64 + 0.5) * (1.0 / (1u64 << 53) as f64);
    let z = inv_norm_cdf(u);
    let kb = MEDIAN_KB * (SIGMA * z).exp();
    simkit::time::round_nonneg(kb * 1024.0).clamp(MIN_BYTES, MAX_BYTES)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        for id in 0..100 {
            assert_eq!(object_size_bytes(id), object_size_bytes(id));
        }
    }

    #[test]
    fn sizes_within_clamp() {
        for id in 0..100_000 {
            let s = object_size_bytes(id);
            assert!((MIN_BYTES..=MAX_BYTES).contains(&s), "id {id}: {s}");
        }
    }

    #[test]
    fn median_near_8kb_and_heavy_tail() {
        let n = 100_000u64;
        let mut sizes: Vec<u64> = (0..n).map(object_size_bytes).collect();
        sizes.sort_unstable();
        let median = sizes[sizes.len() / 2] as f64 / 1024.0;
        assert!((6.5..9.5).contains(&median), "median {median} KB");
        // About half the objects fit under the default 8 KB in-memory cap.
        let under_8k = sizes.iter().filter(|&&s| s <= 8 * 1024).count() as f64 / n as f64;
        assert!((0.40..0.60).contains(&under_8k), "under-8K {under_8k}");
        // A real tail exists: some objects exceed 256 KB.
        let over_256k = sizes.iter().filter(|&&s| s > 256 * 1024).count();
        assert!(over_256k > 50, "tail too thin: {over_256k}");
    }

    #[test]
    fn inv_norm_cdf_sane() {
        assert!((inv_norm_cdf(0.5)).abs() < 1e-9);
        assert!((inv_norm_cdf(0.975) - 1.959964).abs() < 1e-4);
        assert!((inv_norm_cdf(0.025) + 1.959964).abs() < 1e-4);
        assert!(inv_norm_cdf(1e-6) < -4.0);
        assert!(inv_norm_cdf(1.0 - 1e-6) > 4.0);
    }

    #[test]
    fn mean_larger_than_median() {
        // Lognormal: mean = median * exp(sigma^2/2) ~ 13 KB.
        let n = 100_000u64;
        let total: u64 = (0..n).map(object_size_bytes).sum();
        let mean_kb = total as f64 / n as f64 / 1024.0;
        assert!((10.0..17.0).contains(&mean_kb), "mean {mean_kb} KB");
    }
}
