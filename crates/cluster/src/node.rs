//! A cluster machine: hardware resources plus its tier role state.

use crate::appserver::AppState;
use crate::config::{NodeParams, Role};
use crate::database::DbState;
use crate::memory::{app_memory_mb, db_memory_mb, pressure_factor, proxy_memory_mb};
use crate::proxy::ProxyState;
use crate::request::ReqId;
use crate::spec::NodeSpec;
use faults::Health;
use simkit::resource::MultiServer;
use simkit::time::{SimDuration, SimTime};

/// Role-specific server-process state on a node.
#[derive(Debug, Clone)]
pub enum RoleState {
    Proxy(ProxyState),
    App(AppState),
    Db(DbState),
}

impl RoleState {
    pub fn role(&self) -> Role {
        match self {
            RoleState::Proxy(_) => Role::Proxy,
            RoleState::App(_) => Role::App,
            RoleState::Db(_) => Role::Db,
        }
    }
}

/// A cluster machine.
#[derive(Debug)]
pub struct Node {
    pub spec: NodeSpec,
    /// CPU cores (timed multi-server).
    pub cpu: MultiServer<ReqId>,
    /// Disk (single-armed, timed).
    pub disk: MultiServer<ReqId>,
    /// NIC (timed; transfers serialize at saturation).
    pub nic: MultiServer<ReqId>,
    /// Memory configured by the node's parameters, MB.
    pub mem_used_mb: f64,
    /// Service-time multiplier from memory pressure (≥ 1).
    pub pressure: f64,
    /// Injected health: `Down` nodes refuse new work at routing time,
    /// `Degraded` nodes scale their service times.
    pub health: Health,
    /// The server process running on this node.
    pub role_state: RoleState,
}

/// Apply a health slowdown factor, skipping the multiply entirely when
/// the factor is 1.0 so healthy nodes keep byte-identical timings.
#[inline]
fn health_scaled(d: SimDuration, factor: f64) -> SimDuration {
    if factor == 1.0 {
        d
    } else {
        d.mul_f64(factor)
    }
}

impl Node {
    /// Build a node for its configured role, computing its memory demand
    /// and pressure factor once (parameters are fixed for the iteration).
    pub fn new(spec: NodeSpec, params: &NodeParams, start: SimTime, hot_table_slots: u64) -> Self {
        let (role_state, mem_used_mb) = match params {
            NodeParams::Proxy(p) => (RoleState::Proxy(ProxyState::new(*p)), proxy_memory_mb(p)),
            NodeParams::App(w) => (RoleState::App(AppState::new(*w, start)), app_memory_mb(w)),
            NodeParams::Db(d) => (
                RoleState::Db(DbState::new(*d, start, hot_table_slots)),
                db_memory_mb(d),
            ),
        };
        let pressure = pressure_factor(mem_used_mb, spec.memory_mb);
        Node {
            spec,
            cpu: MultiServer::new(start, spec.cores, None),
            disk: MultiServer::new(start, 1, None),
            nic: MultiServer::new(start, 1, None),
            mem_used_mb,
            pressure,
            health: Health::Up,
            role_state,
        }
    }

    pub fn role(&self) -> Role {
        self.role_state.role()
    }

    /// CPU service time for `demand` at reference speed, including memory
    /// pressure.
    pub fn cpu_time(&self, demand: SimDuration) -> SimDuration {
        health_scaled(
            self.spec.cpu_time(demand).mul_f64(self.pressure),
            self.health.cpu_factor(),
        )
    }

    /// Disk service time for one I/O of `bytes`, including pressure
    /// (paging competes for the same arm).
    pub fn disk_time(&self, bytes: u64) -> SimDuration {
        health_scaled(
            self.spec.disk_io(bytes).mul_f64(self.pressure),
            self.health.disk_factor(),
        )
    }

    /// Sequential-append disk time (log flushes), including pressure.
    pub fn disk_seq_time(&self, bytes: u64) -> SimDuration {
        health_scaled(
            self.spec.disk_seq_write(bytes).mul_f64(self.pressure),
            self.health.disk_factor(),
        )
    }

    /// NIC transfer time for `bytes` (pressure does not slow the wire,
    /// but injected NIC degradation does).
    pub fn nic_time(&self, bytes: u64) -> SimDuration {
        health_scaled(self.spec.nic_transfer(bytes), self.health.nic_factor())
    }

    pub fn proxy(&self) -> Option<&ProxyState> {
        match &self.role_state {
            RoleState::Proxy(p) => Some(p),
            _ => None,
        }
    }

    pub fn proxy_mut(&mut self) -> Option<&mut ProxyState> {
        match &mut self.role_state {
            RoleState::Proxy(p) => Some(p),
            _ => None,
        }
    }

    pub fn app(&self) -> Option<&AppState> {
        match &self.role_state {
            RoleState::App(a) => Some(a),
            _ => None,
        }
    }

    pub fn app_mut(&mut self) -> Option<&mut AppState> {
        match &mut self.role_state {
            RoleState::App(a) => Some(a),
            _ => None,
        }
    }

    pub fn db(&self) -> Option<&DbState> {
        match &self.role_state {
            RoleState::Db(d) => Some(d),
            _ => None,
        }
    }

    pub fn db_mut(&mut self) -> Option<&mut DbState> {
        match &mut self.role_state {
            RoleState::Db(d) => Some(d),
            _ => None,
        }
    }

    /// Snapshot resource utilizations over the window ending at `now`.
    pub fn utilization(&self, now: SimTime) -> NodeUtilization {
        NodeUtilization {
            cpu: self.cpu.utilization(now).min(1.0),
            disk: self.disk.utilization(now).min(1.0),
            net: self.nic.utilization(now).min(1.0),
            mem: (self.mem_used_mb / self.spec.memory_mb).min(2.0),
        }
    }

    /// Restart the utilization windows (iteration boundary).
    pub fn reset_windows(&mut self, now: SimTime) {
        self.cpu.reset_window(now);
        self.disk.reset_window(now);
        self.nic.reset_window(now);
    }
}

/// Utilization of the four monitored resources — the `R_ij` of the
/// Section IV reconfiguration algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct NodeUtilization {
    pub cpu: f64,
    pub disk: f64,
    pub net: f64,
    pub mem: f64,
}

impl NodeUtilization {
    /// Iterate (resource-name, value) pairs.
    pub fn resources(&self) -> [(&'static str, f64); 4] {
        [
            ("cpu", self.cpu),
            ("disk", self.disk),
            ("net", self.net),
            ("mem", self.mem),
        ]
    }

    /// The maximum utilization across resources.
    pub fn max_resource(&self) -> f64 {
        self.cpu.max(self.disk).max(self.net).max(self.mem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NodeParams;

    fn node(role: Role) -> Node {
        Node::new(
            NodeSpec::hpdc04(),
            &NodeParams::default_for(role),
            SimTime::ZERO,
            640,
        )
    }

    #[test]
    fn builds_each_role() {
        assert_eq!(node(Role::Proxy).role(), Role::Proxy);
        assert_eq!(node(Role::App).role(), Role::App);
        assert_eq!(node(Role::Db).role(), Role::Db);
        assert!(node(Role::Proxy).proxy().is_some());
        assert!(node(Role::App).app().is_some());
        assert!(node(Role::Db).db().is_some());
        assert!(node(Role::Db).proxy().is_none());
    }

    #[test]
    fn default_nodes_have_no_pressure() {
        for role in Role::ALL {
            let n = node(role);
            assert_eq!(n.pressure, 1.0, "{role} pressured at default config");
        }
    }

    #[test]
    fn pressure_inflates_disk_but_not_nic() {
        let mut n = node(Role::Db);
        let disk_before = n.disk_time(40_000);
        let nic_before = n.nic_time(12_500);
        n.pressure = 2.0;
        assert_eq!(n.disk_time(40_000), disk_before.mul_f64(2.0));
        assert_eq!(n.nic_time(12_500), nic_before);
    }

    #[test]
    fn cpu_time_applies_speed_and_pressure() {
        let mut n = node(Role::App);
        assert_eq!(
            n.cpu_time(SimDuration::from_millis(10)),
            SimDuration::from_millis(10)
        );
        n.pressure = 3.0;
        assert_eq!(
            n.cpu_time(SimDuration::from_millis(10)),
            SimDuration::from_millis(30)
        );
        assert_eq!(n.nic_time(12_500), SimDuration::from_millis(1));
    }

    #[test]
    fn degraded_health_scales_each_resource() {
        use faults::Slowdown;
        let mut n = node(Role::Db);
        let cpu = n.cpu_time(SimDuration::from_millis(10));
        let disk = n.disk_time(40_000);
        let seq = n.disk_seq_time(64 * 1024);
        let nic = n.nic_time(12_500);
        n.health = Health::Degraded(Slowdown {
            cpu: 2.0,
            disk: 3.0,
            nic: 4.0,
        });
        assert_eq!(n.cpu_time(SimDuration::from_millis(10)), cpu.mul_f64(2.0));
        assert_eq!(n.disk_time(40_000), disk.mul_f64(3.0));
        assert_eq!(n.disk_seq_time(64 * 1024), seq.mul_f64(3.0));
        assert_eq!(n.nic_time(12_500), nic.mul_f64(4.0));
        // Up and Down leave timings untouched (down nodes are cut off at
        // routing, not slowed).
        n.health = Health::Down;
        assert_eq!(n.nic_time(12_500), nic);
    }

    #[test]
    fn utilization_snapshot_ranges() {
        let n = node(Role::Proxy);
        let u = n.utilization(SimTime::from_secs(10));
        assert_eq!(u.cpu, 0.0);
        assert!(u.mem > 0.0 && u.mem < 1.0);
        assert_eq!(u.resources().len(), 4);
        assert!(u.max_resource() >= u.cpu);
    }
}
