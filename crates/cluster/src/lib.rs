//! # cluster — the simulated three-tier web cluster
//!
//! The testbed substrate of the HPDC'04 reproduction: a discrete-event
//! model of the paper's Squid → Tomcat → MySQL pipeline with every Table 3
//! tunable wired to a performance mechanism:
//!
//! * [`proxy`] — LRU memory + disk stores, admission by object size,
//!   bucket-chain lookup cost;
//! * [`appserver`] — HTTP/AJP thread pools with accept backlogs, buffer
//!   chunking, thread-spawn and scheduling overheads;
//! * [`database`] — connection and run-slot semaphores, table cache, join
//!   and network buffers, binlog spill;
//! * [`memory`] — per-node memory accounting with a swap-pressure
//!   slowdown (why extreme configurations hurt);
//! * [`model`]/[`runner`] — the request pipeline as a [`simkit`] model and
//!   the per-iteration evaluator the tuner calls.
//!
//! Hardware is Table 2's (dual-CPU, 1 GB, 100 Mbps) via [`spec::NodeSpec`].
//!
//! ## One measurement iteration
//!
//! ```
//! use cluster::{ClusterScenario, run_iteration};
//! use tpcw::metrics::IntervalPlan;
//! use tpcw::mix::Workload;
//!
//! let scenario = ClusterScenario::single(
//!     Workload::Shopping, // TPC-W mix
//!     300,                // emulated browsers
//!     IntervalPlan::tiny(),
//!     42,                 // seed
//! );
//! let outcome = run_iteration(&scenario);
//! assert!(outcome.metrics.wips > 0.0);
//! assert_eq!(outcome.node_utilization.len(), 3); // proxy, app, db
//! ```

// Library code must surface failures as typed errors, never panic;
// test modules (cfg(test)) are exempt. CI enforces this with a clippy
// step dedicated to these crates.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod appserver;
pub mod cache;
pub mod config;
pub mod database;
pub mod memory;
pub mod model;
pub mod node;
pub mod object;
pub mod params;
pub mod pricing;
pub mod proxy;
pub mod request;
pub mod runner;
pub mod spec;

pub use config::{ClusterConfig, NodeId, NodeParams, Role, Topology};
pub use faults::{Health, HealthChange, HealthTimeline, Slowdown};
pub use model::{ClusterModel, ClusterScenario};
pub use node::NodeUtilization;
pub use params::{
    DbParams, ProxyParams, TunableDef, WebParams, DB_TUNABLES, PROXY_TUNABLES, WEB_TUNABLES,
};
pub use pricing::PriceList;
pub use runner::{run_iteration, IterationOutcome};
pub use runner::{run_iteration_checked, run_iteration_checked_observed, EvalError};
pub use spec::NodeSpec;
