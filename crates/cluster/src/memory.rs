//! Node memory accounting and the swap-pressure penalty.
//!
//! The paper observed that "the system often performs poorly when using a
//! configuration with extreme values". The dominant mechanism on 1 GB
//! machines is memory: thread stacks, connection buffers, and caches are
//! all *configured* consumers — push several to their limits and the node
//! starts paging, which multiplies every service time. This module turns a
//! node's parameters into a memory demand and a smooth slowdown factor.

use crate::params::{DbParams, ProxyParams, WebParams};

const MB: f64 = 1024.0 * 1024.0;

/// Memory demand (MB) of a Squid proxy process.
///
/// Base process + the configured memory store + index/bucket overhead
/// (small — Squid's metadata is ~100 B/object; with at most tens of
/// thousands of objects this stays in single-digit MB).
pub fn proxy_memory_mb(p: &ProxyParams) -> f64 {
    let base = 80.0;
    let store = p.cache_mem.max(0) as f64;
    let index = 6.0; // object metadata + hash buckets
    base + store + index
}

/// Memory demand (MB) of a Tomcat process.
///
/// JVM base + per-thread cost. Threads above `minProcessors` exist only
/// under load, so they are charged at half weight (Tomcat reaps idle
/// threads back to the minimum).
pub fn app_memory_mb(w: &WebParams) -> f64 {
    let base = 128.0;
    let http = w.http_pool();
    let ajp = w.ajp_pool();
    let per_thread_mb = 0.5 + w.buffer_size.max(0) as f64 / MB;
    let http_threads = http.min as f64 + 0.5 * (http.max - http.min) as f64;
    let ajp_threads = ajp.min as f64 + 0.5 * (ajp.max - ajp.min) as f64;
    base + http_threads * per_thread_mb + ajp_threads * 0.5
}

/// Memory demand (MB) of a MySQL process.
///
/// * per-connection: thread stack + network buffer (allocated for every
///   permitted connection up-front in MySQL 3.23's thread-per-connection
///   model, scaled by a 60% typical-usage factor),
/// * per-running-thread: join buffer (only queries actually joining hold
///   one — bounded by `thread_concurrency`) and binlog cache (only writing
///   transactions — charged at half the thread concurrency),
/// * table cache descriptors and the delayed-insert queue.
pub fn db_memory_mb(d: &DbParams) -> f64 {
    let base = 110.0;
    let conns = d.max_connections.max(0) as f64 * 0.6;
    let per_conn = (d.thread_stack.max(0) + d.net_buffer_length.max(0)) as f64 / MB;
    let threads = d.thread_concurrency.max(0) as f64;
    let join = threads * d.join_buffer_size.max(0) as f64 / MB;
    let binlog = 0.5 * threads * d.binlog_cache_size.max(0) as f64 / MB;
    let tables = d.table_cache.max(0) as f64 * 0.008;
    let delayed = d.delayed_queue_size.max(0) as f64 * 0.0005;
    base + conns * per_conn + join + binlog + tables + delayed
}

/// Smooth service-time multiplier from memory pressure.
///
/// * below 80% occupancy: no penalty;
/// * 80–100%: quadratic ramp up to 4× (page-cache starvation, then light
///   swapping);
/// * above 100%: steep linear growth (thrashing).
pub fn pressure_factor(used_mb: f64, capacity_mb: f64) -> f64 {
    if capacity_mb <= 0.0 {
        return 1.0;
    }
    let rho = used_mb / capacity_mb;
    if rho <= 0.80 {
        1.0
    } else if rho <= 1.0 {
        let x = (rho - 0.80) / 0.20;
        1.0 + 3.0 * x * x
    } else {
        4.0 + 12.0 * (rho - 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{DbParams, ProxyParams, WebParams};

    #[test]
    fn default_configs_fit_comfortably_in_1gb() {
        // The paper's default configuration performs "ok" — it must not be
        // memory-bound.
        let p = proxy_memory_mb(&ProxyParams::default_config());
        let a = app_memory_mb(&WebParams::default_config());
        let d = db_memory_mb(&DbParams::default_config());
        assert!(p < 820.0, "proxy {p}");
        assert!(a < 820.0, "app {a}");
        assert!(d < 820.0, "db {d}");
        assert_eq!(pressure_factor(p, 1024.0), 1.0);
        assert_eq!(pressure_factor(a, 1024.0), 1.0);
        assert_eq!(pressure_factor(d, 1024.0), 1.0);
    }

    #[test]
    fn paper_tuned_ordering_config_still_fits() {
        // Table 3's ordering column pushed many values up; the tuned system
        // performed well, so it must not thrash in our model either.
        let d = DbParams {
            binlog_cache_size: 284_672,
            delayed_insert_limit: 700,
            max_connections: 701,
            delayed_queue_size: 7_100,
            join_buffer_size: 407_552,
            net_buffer_length: 34_816,
            table_cache: 761,
            thread_concurrency: 76,
            thread_stack: 773_120,
        };
        let used = db_memory_mb(&d);
        assert!(
            pressure_factor(used, 1024.0) < 2.0,
            "tuned ordering db uses {used} MB"
        );
    }

    #[test]
    fn extreme_values_cause_pressure() {
        // All DB knobs at maximum must thrash a 1 GB node.
        let d = DbParams {
            binlog_cache_size: 1_048_576,
            delayed_insert_limit: 1_000,
            max_connections: 1_000,
            delayed_queue_size: 20_000,
            join_buffer_size: 16_777_216,
            net_buffer_length: 65_536,
            table_cache: 2_048,
            thread_concurrency: 512,
            thread_stack: 2_097_152,
        };
        let used = db_memory_mb(&d);
        assert!(used > 1024.0, "extreme config must exceed RAM, used {used}");
        assert!(pressure_factor(used, 1024.0) > 4.0);
    }

    #[test]
    fn default_join_buffer_is_a_real_cost() {
        // The paper found shrinking join_buffer_size from 8 MB to 400 KB
        // cost nothing — in our model it must *free* meaningful memory so
        // the tuner can trade it for useful caches.
        let mut d = DbParams::default_config();
        let before = db_memory_mb(&d);
        d.join_buffer_size = 407_552;
        let after = db_memory_mb(&d);
        assert!(before - after > 50.0, "saved {} MB", before - after);
    }

    #[test]
    fn pressure_factor_shape() {
        assert_eq!(pressure_factor(0.0, 1024.0), 1.0);
        assert_eq!(pressure_factor(819.0, 1024.0), 1.0);
        let mid = pressure_factor(921.6, 1024.0); // 90%
        assert!(mid > 1.0 && mid < 2.0, "mid {mid}");
        let full = pressure_factor(1024.0, 1024.0);
        assert!((full - 4.0).abs() < 1e-9);
        let over = pressure_factor(1228.8, 1024.0); // 120%
        assert!(over > 6.0);
        // Monotone non-decreasing.
        let mut last = 0.0;
        for i in 0..200 {
            let f = pressure_factor(i as f64 * 10.0, 1024.0);
            assert!(f >= last);
            last = f;
        }
        // Degenerate capacity.
        assert_eq!(pressure_factor(100.0, 0.0), 1.0);
    }

    #[test]
    fn memory_grows_with_each_consumer() {
        let base = DbParams::default_config();
        let m0 = db_memory_mb(&base);
        for (i, bump) in [
            DbParams {
                max_connections: 800,
                ..base
            },
            DbParams {
                thread_stack: 1_500_000,
                ..base
            },
            DbParams {
                join_buffer_size: 16_000_000,
                ..base
            },
            DbParams {
                thread_concurrency: 300,
                ..base
            },
            DbParams {
                table_cache: 2_000,
                ..base
            },
            DbParams {
                binlog_cache_size: 1_000_000,
                ..base
            },
        ]
        .iter()
        .enumerate()
        {
            assert!(db_memory_mb(bump) > m0, "consumer {i} did not add memory");
        }
        let w0 = app_memory_mb(&WebParams::default_config());
        let mut w = WebParams::default_config();
        w.max_processors = 400;
        assert!(app_memory_mb(&w) > w0);
        let p0 = proxy_memory_mb(&ProxyParams::default_config());
        let mut p = ProxyParams::default_config();
        p.cache_mem = 64;
        assert!(proxy_memory_mb(&p) > p0);
    }
}
