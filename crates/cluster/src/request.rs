//! In-flight request state.
//!
//! Each web interaction in flight is one [`Request`] in a slab (free-list
//! recycled, so steady-state operation allocates nothing). Events carry a
//! [`ReqId`]; the request records where it is in the pipeline and which
//! tier resources it currently holds.

use crate::config::NodeId;
use crate::proxy::CacheOutcome;
use simkit::time::{SimDuration, SimTime};
use tpcw::browser::BrowserId;
use tpcw::interaction::Interaction;

/// Slab index of an in-flight request.
pub type ReqId = u32;

/// Where the request is in the pipeline — interpreted together with the
/// resource-completion event that carries it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReqPhase {
    /// Proxy CPU: cache lookup / request parsing.
    ProxyLookup,
    /// Proxy disk: reading a disk-store hit.
    ProxyDiskRead,
    /// Proxy NIC: sending the response to the browser.
    ProxySend,
    /// App CPU: servlet / static handler execution.
    AppCpu,
    /// DB CPU: query execution.
    DbCpu,
    /// DB disk: data page read.
    DbDiskRead,
    /// DB disk: binlog spill flush for an oversized transaction.
    DbBinlogFlush,
}

/// One in-flight web interaction.
#[derive(Debug, Clone, Copy)]
pub struct Request {
    pub browser: BrowserId,
    pub interaction: Interaction,
    pub issued_at: SimTime,
    /// Think time after this interaction completes (or fails). Drawn up
    /// front at admission so the browser stream's draws batch into one
    /// contiguous run (see `ClusterModel::issue_request`).
    pub think: SimDuration,
    /// Proxy node that accepted the request.
    pub proxy_node: NodeId,
    /// App node chosen when forwarded (meaningless for proxy hits).
    pub app_node: NodeId,
    /// DB node chosen for this request's queries.
    pub db_node: NodeId,
    /// Work line the request belongs to (0 when unpartitioned).
    pub line: u32,
    /// Which tiers this request was assigned a node in (for
    /// load-balancer accounting release).
    pub assigned_app: bool,
    pub assigned_db: bool,
    /// Cacheable object requested, if any.
    pub object: Option<u64>,
    /// Response size in bytes.
    pub response_bytes: u64,
    /// How the proxy resolved it.
    pub cache_outcome: CacheOutcome,
    /// True if the page needs servlet (AJP) execution.
    pub needs_servlet: bool,
    /// Database queries still to run.
    pub queries_remaining: u32,
    /// Pipeline position.
    pub phase: ReqPhase,
    /// Resources currently held (released on completion or failure).
    pub holds_http: bool,
    pub holds_ajp: bool,
    pub holds_db_conn: bool,
    pub holds_db_sched: bool,
    /// The current DB query needs a data-page disk read after its CPU
    /// slice.
    pub pending_disk: bool,
    /// Pending binlog spill after the current disk read (write queries
    /// whose transaction log overflowed `binlog_cache_size`).
    pub binlog_spill: bool,
    /// Generation counter guarding against stale events after slot reuse.
    pub generation: u32,
    /// How many browsers this request stands for (1 in the per-browser
    /// load model; the cohort token weight otherwise). Service demand is
    /// scaled and completions counted by this factor.
    pub weight: u32,
}

impl Request {
    pub fn new(browser: BrowserId, interaction: Interaction, issued_at: SimTime) -> Self {
        Request {
            browser,
            interaction,
            issued_at,
            think: SimDuration::ZERO,
            proxy_node: 0,
            app_node: 0,
            db_node: 0,
            line: 0,
            assigned_app: false,
            assigned_db: false,
            object: None,
            response_bytes: 0,
            cache_outcome: CacheOutcome::Miss,
            needs_servlet: false,
            queries_remaining: 0,
            phase: ReqPhase::ProxyLookup,
            holds_http: false,
            holds_ajp: false,
            holds_db_conn: false,
            holds_db_sched: false,
            pending_disk: false,
            binlog_spill: false,
            generation: 0,
            weight: 1,
        }
    }

    /// Response time so far.
    pub fn elapsed(&self, now: SimTime) -> SimDuration {
        now.since(self.issued_at)
    }
}

/// Free-list slab of requests.
///
/// Storage is a dense `Vec<Request>` — no `Option` wrapper, no boxing.
/// Liveness is carried entirely by the generation counters: a slot is
/// live iff its occupant's stamped `generation` equals the slot's current
/// generation, and the counter bumps exactly once per [`Self::remove`],
/// so a freed slot's stale occupant can never alias a live one. This is
/// what lets the event handlers use the unchecked [`Self::req`] accessors
/// after a single liveness check (one bounds check, no discriminant).
#[derive(Debug, Default)]
pub struct RequestSlab {
    slots: Vec<Request>,
    generations: Vec<u32>,
    free: Vec<ReqId>,
    live: usize,
    peak_live: usize,
}

impl RequestSlab {
    pub fn new() -> Self {
        RequestSlab::default()
    }

    /// Insert a request, returning its id. The request's generation is
    /// stamped from the slot's generation counter.
    pub fn insert(&mut self, mut req: Request) -> ReqId {
        self.live += 1;
        self.peak_live = self.peak_live.max(self.live);
        match self.free.pop() {
            Some(id) => {
                req.generation = self.generations[id as usize];
                self.slots[id as usize] = req;
                id
            }
            None => {
                let id = self.slots.len() as ReqId;
                req.generation = 0;
                self.generations.push(0);
                self.slots.push(req);
                id
            }
        }
    }

    /// Access a live request.
    pub fn get(&self, id: ReqId) -> Option<&Request> {
        let r = self.slots.get(id as usize)?;
        (r.generation == self.generations[id as usize]).then_some(r)
    }

    pub fn get_mut(&mut self, id: ReqId) -> Option<&mut Request> {
        let r = self.slots.get_mut(id as usize)?;
        (r.generation == self.generations[id as usize]).then_some(r)
    }

    /// Direct access to a request known to be live (hot path; callers
    /// have already passed a generation check this event).
    #[inline(always)]
    pub fn req(&self, id: ReqId) -> &Request {
        debug_assert!(self.get(id).is_some(), "req() on dead slot {id}");
        &self.slots[id as usize]
    }

    /// Direct mutable access to a request known to be live.
    #[inline(always)]
    pub fn req_mut(&mut self, id: ReqId) -> &mut Request {
        debug_assert!(self.get(id).is_some(), "req_mut() on dead slot {id}");
        &mut self.slots[id as usize]
    }

    /// Remove a request, recycling its slot (generation bumps so stale
    /// events referencing the old occupant can be detected).
    pub fn remove(&mut self, id: ReqId) -> Option<Request> {
        let r = *self.slots.get(id as usize)?;
        if r.generation != self.generations[id as usize] {
            return None;
        }
        self.generations[id as usize] = self.generations[id as usize].wrapping_add(1);
        self.free.push(id);
        self.live -= 1;
        Some(r)
    }

    /// Current generation of a slot (for stale-event checks).
    pub fn generation(&self, id: ReqId) -> Option<u32> {
        self.generations.get(id as usize).copied()
    }

    /// Generation of a request known to be live (hot path).
    #[inline(always)]
    pub fn stamp_of(&self, id: ReqId) -> u32 {
        debug_assert!(self.get(id).is_some(), "stamp_of() on dead slot {id}");
        self.generations[id as usize]
    }

    pub fn live(&self) -> usize {
        self.live
    }

    pub fn peak_live(&self) -> usize {
        self.peak_live
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req() -> Request {
        Request::new(3, Interaction::Home, SimTime::from_secs(1))
    }

    #[test]
    fn insert_get_remove() {
        let mut slab = RequestSlab::new();
        let id = slab.insert(req());
        assert_eq!(slab.live(), 1);
        assert_eq!(slab.get(id).unwrap().browser, 3);
        let removed = slab.remove(id).unwrap();
        assert_eq!(removed.interaction, Interaction::Home);
        assert_eq!(slab.live(), 0);
        assert!(slab.get(id).is_none());
        assert!(slab.remove(id).is_none());
    }

    #[test]
    fn slots_are_recycled_with_new_generation() {
        let mut slab = RequestSlab::new();
        let a = slab.insert(req());
        let gen_a = slab.get(a).unwrap().generation;
        slab.remove(a);
        let b = slab.insert(req());
        assert_eq!(a, b, "slot must be reused");
        let gen_b = slab.get(b).unwrap().generation;
        assert_ne!(gen_a, gen_b, "generation must change on reuse");
        assert_eq!(slab.generation(b), Some(gen_b));
        assert_eq!(slab.stamp_of(b), gen_b);
    }

    #[test]
    fn dead_slot_is_invisible_until_reinserted() {
        let mut slab = RequestSlab::new();
        let a = slab.insert(req());
        slab.remove(a);
        // The dense slot still physically holds the old bytes, but every
        // checked accessor must treat it as vacant.
        assert!(slab.get(a).is_none());
        assert!(slab.get_mut(a).is_none());
        assert!(slab.remove(a).is_none(), "double-remove must be a no-op");
        assert_eq!(slab.live(), 0);
    }

    #[test]
    fn peak_live_tracks_high_water() {
        let mut slab = RequestSlab::new();
        let ids: Vec<_> = (0..10).map(|_| slab.insert(req())).collect();
        for id in &ids {
            slab.remove(*id);
        }
        slab.insert(req());
        assert_eq!(slab.peak_live(), 10);
        assert_eq!(slab.live(), 1);
    }

    #[test]
    fn elapsed_measures_from_issue() {
        let r = req();
        assert_eq!(r.elapsed(SimTime::from_secs(3)), SimDuration::from_secs(2));
    }

    #[test]
    fn get_out_of_range_is_none() {
        let slab = RequestSlab::new();
        assert!(slab.get(42).is_none());
        assert_eq!(slab.generation(42), None);
    }
}
