//! One tuning iteration = one self-contained simulation run.
//!
//! The paper's harness restarts the servers between iterations anyway (so
//! configuration-file parameters take effect), so each iteration here is an
//! independent DES run: build the world from (topology, config, workload),
//! warm up, measure, cool down, and report WIPS plus per-node resource
//! utilizations. Runs are deterministic in the scenario seed; the tuning
//! session varies the seed per iteration to model real measurement noise.

use crate::model::{start_simulation, ClusterScenario};
use crate::node::NodeUtilization;
use simkit::engine::StopReason;
use simkit::time::SimTime;
use std::fmt;
use tpcw::metrics::IterationMetrics;

/// Why an evaluation could not produce a measurement.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// The scenario failed cross-field validation.
    InvalidScenario(String),
    /// The simulation went idle before warmup ended (model bug).
    IdleDuringWarmup,
    /// The simulation went idle during measurement (model bug).
    IdleDuringMeasurement,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::InvalidScenario(msg) => write!(f, "invalid scenario: {msg}"),
            EvalError::IdleDuringWarmup => {
                write!(
                    f,
                    "cluster went idle during warmup — no browsers scheduled?"
                )
            }
            EvalError::IdleDuringMeasurement => {
                write!(f, "cluster went idle during measurement")
            }
        }
    }
}

impl std::error::Error for EvalError {}

/// Result of one iteration.
#[derive(Debug, Clone)]
pub struct IterationOutcome {
    /// WIPS and companion metrics over the measurement window.
    pub metrics: IterationMetrics,
    /// Resource utilization per node, measured over the whole run.
    pub node_utilization: Vec<NodeUtilization>,
    /// Requests completed across all phases.
    pub total_done: u64,
    /// Requests refused at admission across all phases.
    pub total_failed: u64,
    /// Per-work-line WIPS (single entry when unpartitioned).
    pub line_wips: Vec<f64>,
    /// Events executed (simulation-cost diagnostics).
    pub events: u64,
}

/// Execute one iteration of `scenario`, shared by the checked and
/// panicking entry points. `registry` turns on metric publication.
fn run_iteration_inner(
    scenario: &ClusterScenario,
    registry: Option<&obs::Registry>,
) -> Result<IterationOutcome, EvalError> {
    if let Err(msg) = scenario.validate() {
        return Err(EvalError::InvalidScenario(msg));
    }
    let mut sim = start_simulation(scenario);
    let horizon = SimTime::ZERO + scenario.plan.total();
    // Reset utilization windows after warmup so reported utilizations
    // reflect the steady state.
    let warm_end = SimTime::ZERO + scenario.plan.warmup;
    let reason = sim.run_until(warm_end);
    if reason != StopReason::HorizonReached {
        return Err(EvalError::IdleDuringWarmup);
    }
    let now = sim.now();
    for node in &mut sim.model_mut().nodes {
        node.reset_windows(now);
    }
    let reason = sim.run_until(horizon);
    if reason != StopReason::HorizonReached {
        return Err(EvalError::IdleDuringMeasurement);
    }
    let events = sim.events_executed();
    let end = sim.now();
    if let Some(registry) = registry {
        sim.publish_metrics(registry, "sim");
        publish_node_metrics(sim.model(), registry, end);
    }
    let model = sim.model();
    Ok(IterationOutcome {
        metrics: model.metrics.summarise(),
        node_utilization: model.utilizations(end),
        total_done: model.total_done(),
        total_failed: model.total_failed(),
        line_wips: model.line_wips(),
        events,
    })
}

/// Execute one iteration of `scenario`.
///
/// Panics if the simulation deadlocks before the horizon (that would be a
/// model bug, not a configuration issue — bad configurations are slow, not
/// stuck, because browsers always come back after think time). Resilient
/// callers use [`run_iteration_checked`] instead.
pub fn run_iteration(scenario: &ClusterScenario) -> IterationOutcome {
    match run_iteration_inner(scenario, None) {
        Ok(out) => out,
        Err(e) => panic!("{e}"),
    }
}

/// Execute one iteration, returning an error instead of panicking when
/// the scenario is invalid or the simulation stalls.
pub fn run_iteration_checked(scenario: &ClusterScenario) -> Result<IterationOutcome, EvalError> {
    run_iteration_inner(scenario, None)
}

/// [`run_iteration_observed`] with error returns instead of panics.
pub fn run_iteration_checked_observed(
    scenario: &ClusterScenario,
    registry: &obs::Registry,
) -> Result<IterationOutcome, EvalError> {
    run_iteration_inner(scenario, Some(registry))
}

/// Execute one iteration and publish per-tier resource metrics into
/// `registry`: CPU/disk/NIC utilization and queue depth per node, cache
/// hit ratios on the proxy tier, engine event counts, and cluster-level
/// completion counters. Metric names are `cluster.n<i>.<tier>.<resource>.*`
/// so a session-long registry keeps per-node series distinct.
pub fn run_iteration_observed(
    scenario: &ClusterScenario,
    registry: &obs::Registry,
) -> IterationOutcome {
    match run_iteration_inner(scenario, Some(registry)) {
        Ok(out) => out,
        Err(e) => panic!("{e}"),
    }
}

/// Publish per-node resource metrics for a finished run.
fn publish_node_metrics(
    model: &crate::model::ClusterModel,
    registry: &obs::Registry,
    end: SimTime,
) {
    for (i, node) in model.nodes.iter().enumerate() {
        let tier = node.role().name();
        let prefix = format!("cluster.n{i}.{tier}");
        node.cpu
            .publish_metrics(registry, &format!("{prefix}.cpu"), end);
        node.disk
            .publish_metrics(registry, &format!("{prefix}.disk"), end);
        node.nic
            .publish_metrics(registry, &format!("{prefix}.nic"), end);
        if let Some(proxy) = node.proxy() {
            registry
                .gauge(&format!("{prefix}.cache.mem_hit_ratio"))
                .set(proxy.mem_store().hit_ratio());
            registry
                .gauge(&format!("{prefix}.cache.disk_hit_ratio"))
                .set(proxy.disk_store().hit_ratio());
            registry
                .counter(&format!("{prefix}.cache.forwards"))
                .add(proxy.forwards());
        }
        if let Some(app) = node.app() {
            app.http_pool
                .publish_metrics(registry, &format!("{prefix}.http_pool"), end);
            app.ajp_pool
                .publish_metrics(registry, &format!("{prefix}.ajp_pool"), end);
        }
        if let Some(db) = node.db() {
            db.conn_pool
                .publish_metrics(registry, &format!("{prefix}.conn_pool"), end);
            db.run_slots
                .publish_metrics(registry, &format!("{prefix}.run_slots"), end);
        }
    }
    registry.counter("cluster.done").add(model.total_done());
    registry.counter("cluster.failed").add(model.total_failed());
    registry
        .histogram("cluster.wips")
        .record(model.metrics.wips());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::LoadModel;
    use tpcw::metrics::IntervalPlan;
    use tpcw::mix::Workload;

    fn tiny_scenario(workload: Workload, seed: u64) -> ClusterScenario {
        let mut s = ClusterScenario::single(workload, 200, IntervalPlan::tiny(), seed);
        s.scale = tpcw::scale::CatalogScale::hpdc04();
        s
    }

    #[test]
    fn simulation_completes_and_produces_throughput() {
        let out = run_iteration(&tiny_scenario(Workload::Shopping, 1));
        assert!(out.metrics.wips > 1.0, "wips {}", out.metrics.wips);
        assert!(out.total_done > 0);
        assert!(out.events > 1_000);
        assert_eq!(out.node_utilization.len(), 3);
    }

    #[test]
    fn observed_run_matches_plain_and_publishes_metrics() {
        let s = tiny_scenario(Workload::Shopping, 1);
        let plain = run_iteration(&s);
        let reg = obs::Registry::new();
        let observed = run_iteration_observed(&s, &reg);
        // Observation must not perturb the simulation.
        assert_eq!(plain.metrics.completed, observed.metrics.completed);
        assert_eq!(plain.events, observed.events);
        let snap = reg.snapshot();
        let counter = |name: &str| {
            snap.counters
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("missing counter {name}"))
        };
        assert_eq!(counter("sim.events"), observed.events);
        assert_eq!(counter("cluster.done"), observed.total_done);
        assert!(snap
            .gauges
            .iter()
            .any(|(k, v)| k == "cluster.n0.proxy.cache.mem_hit_ratio" && (0.0..=1.0).contains(v)));
        assert!(snap
            .gauges
            .iter()
            .any(|(k, v)| k == "cluster.n2.db.cpu.utilization" && *v > 0.0));
        assert!(snap
            .hists
            .iter()
            .any(|(k, h)| k == "cluster.wips" && h.count == 1));
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = run_iteration(&tiny_scenario(Workload::Browsing, 7));
        let b = run_iteration(&tiny_scenario(Workload::Browsing, 7));
        assert_eq!(a.metrics.completed, b.metrics.completed);
        assert_eq!(a.total_done, b.total_done);
        assert_eq!(a.events, b.events);
    }

    #[test]
    fn different_seeds_vary_slightly() {
        let a = run_iteration(&tiny_scenario(Workload::Shopping, 1));
        let b = run_iteration(&tiny_scenario(Workload::Shopping, 2));
        // Same workload, different stochastic path: close but not equal.
        assert_ne!(a.metrics.completed, b.metrics.completed);
        let rel = (a.metrics.wips - b.metrics.wips).abs() / a.metrics.wips;
        assert!(rel < 0.25, "seeds diverge too much: {rel}");
    }

    #[test]
    fn cohort_runs_are_deterministic() {
        let cohort = |seed| {
            let mut s = tiny_scenario(Workload::Shopping, seed);
            s.browsers.population = 5_000;
            s.load_model = LoadModel::Cohort { bins: 64 };
            s
        };
        let a = run_iteration(&cohort(7));
        let b = run_iteration(&cohort(7));
        assert_eq!(a.metrics.completed, b.metrics.completed);
        assert_eq!(a.total_done, b.total_done);
        assert_eq!(a.total_failed, b.total_failed);
        assert_eq!(a.events, b.events);
        // A different seed takes a different stochastic path.
        let c = run_iteration(&cohort(8));
        assert_ne!(a.events, c.events);
    }

    #[test]
    fn cohort_batches_events_and_counts_browsers() {
        let mut pb = tiny_scenario(Workload::Shopping, 5);
        pb.browsers.population = 5_000;
        let mut co = pb.clone();
        co.load_model = LoadModel::Cohort { bins: 64 };
        let a = run_iteration(&pb);
        let b = run_iteration(&co);
        // The scaling win: far fewer calendar-queue events for the same
        // population.
        assert!(
            (b.events as f64) < (a.events as f64) / 3.0,
            "cohort must batch events: per-browser {} vs cohort {}",
            a.events,
            b.events
        );
        // Accounting stays in browser units: completions are weighted by
        // token weight, so throughput is the same order of magnitude.
        assert!(b.metrics.completed > 0);
        let rel = (b.metrics.wips - a.metrics.wips).abs() / a.metrics.wips;
        assert!(
            rel < 0.30,
            "wips diverged: {} vs {} ({rel})",
            a.metrics.wips,
            b.metrics.wips
        );
    }

    #[test]
    fn cohort_at_weight_one_only_quantises_think_times() {
        // Below one token per browser the cohort model degenerates to
        // per-browser with binned think times: same entity count, same
        // demand, nearly identical throughput.
        let pb = tiny_scenario(Workload::Shopping, 11);
        let mut co = pb.clone();
        co.load_model = LoadModel::Cohort { bins: 64 };
        let a = run_iteration(&pb);
        let b = run_iteration(&co);
        let rel = (b.metrics.wips - a.metrics.wips).abs() / a.metrics.wips;
        assert!(rel < 0.15, "wips diverged at weight 1: {rel}");
    }

    #[test]
    fn browse_heavy_workload_touches_db_less() {
        let b = run_iteration(&tiny_scenario(Workload::Browsing, 3));
        let o = run_iteration(&tiny_scenario(Workload::Ordering, 3));
        // DB node is index 2 in a single topology.
        assert!(
            o.node_utilization[2].cpu > b.node_utilization[2].cpu,
            "ordering must load the db more: {:?} vs {:?}",
            o.node_utilization[2],
            b.node_utilization[2]
        );
    }

    #[test]
    fn work_lines_split_throughput() {
        use crate::config::Topology;
        use crate::ClusterConfig;
        let topology = Topology::tiers(2, 2, 2).unwrap();
        let mut s = ClusterScenario::single(Workload::Shopping, 400, IntervalPlan::tiny(), 9);
        s.config = ClusterConfig::defaults(&topology);
        s.topology = topology;
        s.lines = Some(vec![vec![0, 2, 4], vec![1, 3, 5]]);
        let out = run_iteration(&s);
        assert_eq!(out.line_wips.len(), 2);
        let total: f64 = out.line_wips.iter().sum();
        assert!(
            (total - out.metrics.wips).abs() < 1e-6,
            "line sum {total} vs wips {}",
            out.metrics.wips
        );
        // Browsers split evenly, so the two lines carry similar load.
        let ratio = out.line_wips[0] / out.line_wips[1];
        assert!((0.8..1.25).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn least_connections_balances_like_round_robin_when_homogeneous() {
        use crate::config::Topology;
        use crate::model::LoadBalancing;
        use crate::ClusterConfig;
        let topology = Topology::tiers(2, 2, 1).unwrap();
        let mut rr = ClusterScenario::single(Workload::Shopping, 400, IntervalPlan::tiny(), 13);
        rr.config = ClusterConfig::defaults(&topology);
        rr.topology = topology;
        let mut lc = rr.clone();
        lc.load_balancing = LoadBalancing::LeastConnections;
        let a = run_iteration(&rr);
        let b = run_iteration(&lc);
        // Homogeneous nodes: both policies land near the same throughput,
        // and least-connections keeps the two proxies evenly used.
        let rel = (a.metrics.wips - b.metrics.wips).abs() / a.metrics.wips;
        assert!(rel < 0.1, "rr {} vs lc {}", a.metrics.wips, b.metrics.wips);
        let u = &b.node_utilization;
        let spread = (u[0].disk - u[1].disk).abs();
        assert!(spread < 0.15, "proxy disk imbalance {spread}");
    }

    #[test]
    fn degraded_node_shows_in_utilization_and_least_connections_shields_it() {
        use crate::config::Topology;
        use crate::model::LoadBalancing;
        use crate::ClusterConfig;
        let topology = Topology::tiers(1, 2, 1).unwrap();
        let mut s = ClusterScenario::single(Workload::Ordering, 500, IntervalPlan::tiny(), 17);
        s.config = ClusterConfig::defaults(&topology);
        s.topology = topology;
        s.degrade_cpu(1, 0.25); // first app node at quarter speed
        let rr = run_iteration(&s);
        // The slow node runs proportionally hotter than its healthy twin.
        assert!(
            rr.node_utilization[1].cpu > rr.node_utilization[2].cpu * 1.5,
            "degraded {:?} vs healthy {:?}",
            rr.node_utilization[1],
            rr.node_utilization[2]
        );
        // Least-connections routes around the slow node and wins.
        let mut lc = s.clone();
        lc.load_balancing = LoadBalancing::LeastConnections;
        let out = run_iteration(&lc);
        assert!(
            out.metrics.wips >= rr.metrics.wips,
            "lc {} vs rr {}",
            out.metrics.wips,
            rr.metrics.wips
        );
    }

    #[test]
    fn checked_run_matches_panicking_run() {
        let s = tiny_scenario(Workload::Shopping, 1);
        let plain = run_iteration(&s);
        let checked = run_iteration_checked(&s).expect("valid scenario");
        assert_eq!(plain.metrics.completed, checked.metrics.completed);
        assert_eq!(plain.events, checked.events);
    }

    #[test]
    fn checked_run_reports_invalid_scenario() {
        let mut s = tiny_scenario(Workload::Shopping, 1);
        s.browsers.population = 0;
        match run_iteration_checked(&s) {
            Err(EvalError::InvalidScenario(msg)) => assert!(msg.contains("browsers")),
            other => panic!("expected InvalidScenario, got {other:?}"),
        }
    }

    #[test]
    fn trivial_fault_timeline_is_byte_identical() {
        use faults::{Health, HealthTimeline};
        let plain = run_iteration(&tiny_scenario(Workload::Shopping, 21));
        let mut s = tiny_scenario(Workload::Shopping, 21);
        s.faults = Some(HealthTimeline {
            initial: vec![Health::Up; 3],
            changes: Vec::new(),
        });
        let faulty = run_iteration(&s);
        assert_eq!(plain.metrics.completed, faulty.metrics.completed);
        assert_eq!(plain.events, faulty.events);
        assert_eq!(plain.total_failed, faulty.total_failed);
    }

    #[test]
    fn down_app_node_sheds_load_onto_its_twin() {
        use crate::config::Topology;
        use crate::ClusterConfig;
        use faults::{Health, HealthTimeline};
        let topology = Topology::tiers(1, 2, 1).unwrap();
        let mut s = ClusterScenario::single(Workload::Shopping, 400, IntervalPlan::tiny(), 23);
        s.config = ClusterConfig::defaults(&topology);
        s.topology = topology;
        let healthy = run_iteration(&s);
        let mut initial = vec![Health::Up; 4];
        initial[1] = Health::Down; // first app node dark from the start
        s.faults = Some(HealthTimeline {
            initial,
            changes: Vec::new(),
        });
        let wounded = run_iteration(&s);
        // All app traffic lands on node 2; node 1 stays idle.
        assert!(
            wounded.node_utilization[2].cpu > wounded.node_utilization[1].cpu,
            "down {:?} vs survivor {:?}",
            wounded.node_utilization[1],
            wounded.node_utilization[2]
        );
        assert!(wounded.node_utilization[1].cpu < 0.05);
        // Losing half the app tier must not *gain* throughput (small
        // stochastic jitter aside), and the survivor still serves.
        assert!(
            wounded.metrics.wips <= healthy.metrics.wips * 1.05,
            "wounded {} vs healthy {}",
            wounded.metrics.wips,
            healthy.metrics.wips
        );
        assert!(wounded.metrics.wips > 0.0, "survivor still serves");
    }

    #[test]
    fn mid_run_crash_fires_at_its_offset() {
        use crate::config::Topology;
        use crate::ClusterConfig;
        use faults::{Health, HealthChange, HealthTimeline};
        use simkit::time::SimDuration;
        let topology = Topology::tiers(1, 2, 1).unwrap();
        let mut s = ClusterScenario::single(Workload::Shopping, 400, IntervalPlan::tiny(), 29);
        s.config = ClusterConfig::defaults(&topology);
        s.topology = topology;
        s.faults = Some(HealthTimeline {
            initial: vec![Health::Up; 4],
            changes: vec![HealthChange {
                after: SimDuration::from_secs(1),
                node: 1,
                health: Health::Down,
            }],
        });
        let mut sim = crate::model::start_simulation(&s);
        sim.run_until(SimTime::from_millis(500));
        assert!(!sim.model().healths()[1].is_down(), "not yet crashed");
        sim.run_until(SimTime::from_secs(2));
        assert!(sim.model().healths()[1].is_down(), "crash applied");
    }

    #[test]
    fn whole_proxy_tier_down_refuses_instead_of_stalling() {
        use faults::{Health, HealthTimeline};
        let mut s = tiny_scenario(Workload::Shopping, 31);
        s.faults = Some(HealthTimeline {
            initial: vec![Health::Down, Health::Up, Health::Up],
            changes: Vec::new(),
        });
        // The single proxy is down: every interaction is refused, the sim
        // still reaches its horizon (browsers keep thinking), no panic.
        let out = run_iteration(&s);
        assert_eq!(out.total_done, 0);
        assert!(out.total_failed > 0);
        assert_eq!(out.metrics.wips, 0.0);
    }

    #[test]
    fn markov_sessions_match_iid_throughput() {
        // Same stationary interaction frequencies => statistically similar
        // throughput, different per-session structure.
        let mut iid = tiny_scenario(Workload::Shopping, 11);
        iid.browsers.population = 400;
        let mut markov = iid.clone();
        markov.markov_sessions = true;
        let a = run_iteration(&iid);
        let b = run_iteration(&markov);
        assert!(b.metrics.wips > 0.0);
        let rel = (a.metrics.wips - b.metrics.wips).abs() / a.metrics.wips;
        assert!(
            rel < 0.15,
            "iid {} vs markov {}",
            a.metrics.wips,
            b.metrics.wips
        );
        // Ordering funnel still completes under sessions.
        assert!(b.metrics.order_completed > 0);
    }

    #[test]
    fn unpartitioned_run_reports_one_line() {
        let out = run_iteration(&tiny_scenario(Workload::Browsing, 4));
        assert_eq!(out.line_wips.len(), 1);
        assert!((out.line_wips[0] - out.metrics.wips).abs() < 1e-6);
    }

    #[test]
    fn order_pages_are_slower_than_cached_browse_pages() {
        use tpcw::interaction::InteractionClass;
        let mut s = tiny_scenario(Workload::Shopping, 19);
        s.browsers.population = 400;
        let mut sim = crate::model::start_simulation(&s);
        sim.run_until(simkit::time::SimTime::ZERO + s.plan.total());
        let m = &sim.model().metrics;
        let browse = m.mean_response_of_class(InteractionClass::Browse);
        let order = m.mean_response_of_class(InteractionClass::Order);
        assert!(
            order > browse,
            "order pages must be slower: {order:.4}s vs {browse:.4}s"
        );
    }

    #[test]
    fn all_interactions_complete_eventually() {
        let out = run_iteration(&tiny_scenario(Workload::Ordering, 5));
        // Order-heavy mix: both classes must complete.
        assert!(out.metrics.browse_completed > 0);
        assert!(out.metrics.order_completed > 0);
    }
}
