//! The Squid-like proxy tier model.
//!
//! A proxy node holds two LRU stores: a small memory store (`cache_mem`,
//! objects up to `maximum_object_size_in_memory`) and a large disk store
//! (objects between `minimum_object_size` and `maximum_object_size`).
//! Lookups cost CPU proportional to the hash-chain length
//! (`store_objects_per_bucket`); a memory hit is served straight from RAM,
//! a disk hit pays one disk I/O, a miss is forwarded to the application
//! tier and the response is admitted on the way back.
//!
//! `cache_swap_low/high` steer background disk-store eviction batching —
//! Squid semantics, with (per the paper's empirical finding) no measurable
//! performance effect in this throughput regime.

use crate::cache::{LruCache, ObjectId};
use crate::params::ProxyParams;
use simkit::time::SimDuration;

/// Fixed disk-store capacity (not a Table 3 tunable): 10 GB, effectively
/// "everything cacheable fits" at the paper's scale.
const DISK_STORE_BYTES: u64 = 10 * 1024 * 1024 * 1024;

/// Where a cacheable request was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served from the memory store.
    MemHit,
    /// Served from the disk store (one disk I/O).
    DiskHit,
    /// Not cached; forwarded to the application tier.
    Miss,
}

/// Per-node proxy state.
#[derive(Debug, Clone)]
pub struct ProxyState {
    pub params: ProxyParams,
    mem_store: LruCache,
    disk_store: LruCache,
    forwards: u64,
}

impl ProxyState {
    pub fn new(params: ProxyParams) -> Self {
        ProxyState {
            params,
            mem_store: LruCache::new(params.cache_mem_bytes()),
            disk_store: LruCache::new(DISK_STORE_BYTES),
            forwards: 0,
        }
    }

    /// The in-memory object store (hit/miss statistics live here).
    pub fn mem_store(&self) -> &LruCache {
        &self.mem_store
    }

    /// The on-disk object store.
    pub fn disk_store(&self) -> &LruCache {
        &self.disk_store
    }

    /// CPU cost of one cache lookup + request handling. The hash chain is
    /// `store_objects_per_bucket` long on average; each link costs a couple
    /// of microseconds of pointer chasing.
    pub fn lookup_cpu(&self) -> SimDuration {
        let chain = self.params.store_objects_per_bucket.max(1) as u64;
        SimDuration::from_micros(300 + 2 * chain)
    }

    /// CPU cost to serve a hit (header construction, socket writes).
    pub fn serve_cpu(&self) -> SimDuration {
        SimDuration::from_micros(200)
    }

    /// CPU overhead to forward a miss to the app tier and relay back.
    pub fn forward_cpu(&self) -> SimDuration {
        SimDuration::from_micros(400)
    }

    /// Look up a cacheable object. Updates store recency and statistics.
    pub fn lookup(&mut self, object: ObjectId) -> CacheOutcome {
        if self.mem_store.get(object) {
            CacheOutcome::MemHit
        } else if self.disk_store.get(object) {
            // Squid promotes disk hits into the memory store when they fit.
            let bytes = crate::object::object_size_bytes(object);
            if self.mem_admissible(bytes) {
                self.mem_store.insert(object, bytes);
            }
            CacheOutcome::DiskHit
        } else {
            self.forwards += 1;
            CacheOutcome::Miss
        }
    }

    fn mem_admissible(&self, bytes: u64) -> bool {
        bytes <= (self.params.maximum_object_size_in_memory.max(0) as u64) * 1024
    }

    fn disk_admissible(&self, bytes: u64) -> bool {
        let min = (self.params.minimum_object_size.max(0) as u64) * 1024;
        let max = (self.params.maximum_object_size.max(0) as u64) * 1024;
        bytes >= min && bytes <= max
    }

    /// Admit a fetched object on the response path.
    pub fn admit(&mut self, object: ObjectId, bytes: u64) {
        if self.disk_admissible(bytes) {
            self.disk_store.insert(object, bytes);
        }
        if self.mem_admissible(bytes) {
            self.mem_store.insert(object, bytes);
        }
    }

    /// Memory-store hit ratio so far (diagnostics).
    pub fn mem_hit_ratio(&self) -> f64 {
        self.mem_store.hit_ratio()
    }

    /// Disk-store hit ratio so far (diagnostics).
    pub fn disk_hit_ratio(&self) -> f64 {
        self.disk_store.hit_ratio()
    }

    pub fn forwards(&self) -> u64 {
        self.forwards
    }

    pub fn mem_used_bytes(&self) -> u64 {
        self.mem_store.used_bytes()
    }

    pub fn disk_objects(&self) -> usize {
        self.disk_store.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::object_size_bytes;

    fn proxy() -> ProxyState {
        ProxyState::new(ProxyParams::default_config())
    }

    /// Find an object id whose size satisfies `pred`.
    fn find_object(pred: impl Fn(u64) -> bool) -> ObjectId {
        (0..100_000)
            .find(|&id| pred(object_size_bytes(id)))
            .expect("object exists")
    }

    #[test]
    fn cold_lookup_misses_then_hits_after_admit() {
        let mut p = proxy();
        let obj = find_object(|s| s <= 8 * 1024);
        assert_eq!(p.lookup(obj), CacheOutcome::Miss);
        p.admit(obj, object_size_bytes(obj));
        // Small object: admitted to both stores, so next lookup is MemHit.
        assert_eq!(p.lookup(obj), CacheOutcome::MemHit);
    }

    #[test]
    fn large_object_only_disk_cached_by_default() {
        let mut p = proxy();
        // Default maximum_object_size_in_memory = 8 KB.
        let obj = find_object(|s| s > 8 * 1024 && s <= 4 * 1024 * 1024);
        assert_eq!(p.lookup(obj), CacheOutcome::Miss);
        p.admit(obj, object_size_bytes(obj));
        assert_eq!(p.lookup(obj), CacheOutcome::DiskHit);
    }

    #[test]
    fn raising_in_memory_cap_turns_disk_hits_into_mem_hits() {
        let mut params = ProxyParams::default_config();
        params.maximum_object_size_in_memory = 2_048; // 2 MB
        params.cache_mem = 64;
        let mut p = ProxyState::new(params);
        let obj = find_object(|s| s > 8 * 1024 && s <= 512 * 1024);
        p.admit(obj, object_size_bytes(obj));
        assert_eq!(p.lookup(obj), CacheOutcome::MemHit);
    }

    #[test]
    fn disk_hit_promotes_when_admissible() {
        let mut params = ProxyParams::default_config();
        params.maximum_object_size_in_memory = 64;
        let mut p = ProxyState::new(params);
        let obj = find_object(|s| (9 * 1024..48 * 1024).contains(&s));
        // Admit while in-memory cap was lower: simulate by inserting only
        // to disk via a temporary state.
        p.disk_store.insert(obj, object_size_bytes(obj));
        assert_eq!(p.lookup(obj), CacheOutcome::DiskHit);
        // Promotion: second lookup is a memory hit.
        assert_eq!(p.lookup(obj), CacheOutcome::MemHit);
    }

    #[test]
    fn minimum_object_size_excludes_small_objects_from_disk() {
        let mut params = ProxyParams::default_config();
        params.minimum_object_size = 16; // 16 KB minimum
        params.maximum_object_size_in_memory = 1; // nothing in memory
        let mut p = ProxyState::new(params);
        let small = find_object(|s| s < 8 * 1024);
        p.admit(small, object_size_bytes(small));
        assert_eq!(p.lookup(small), CacheOutcome::Miss);
        let big = find_object(|s| (32 * 1024..256 * 1024).contains(&s));
        p.admit(big, object_size_bytes(big));
        assert_eq!(p.lookup(big), CacheOutcome::DiskHit);
    }

    #[test]
    fn maximum_object_size_excludes_huge_objects() {
        let mut params = ProxyParams::default_config();
        params.maximum_object_size = 256; // 256 KB
        let mut p = ProxyState::new(params);
        let huge = find_object(|s| s > 512 * 1024);
        p.admit(huge, object_size_bytes(huge));
        assert_eq!(p.lookup(huge), CacheOutcome::Miss);
    }

    #[test]
    fn lookup_cpu_scales_with_bucket_occupancy() {
        let mut a = ProxyParams::default_config();
        a.store_objects_per_bucket = 5;
        let mut b = ProxyParams::default_config();
        b.store_objects_per_bucket = 500;
        let fast = ProxyState::new(a).lookup_cpu();
        let slow = ProxyState::new(b).lookup_cpu();
        assert!(slow > fast);
        // But the effect is mild (sub-millisecond): this is a weak knob.
        assert!(slow < SimDuration::from_millis(2));
    }

    #[test]
    fn small_memory_cache_evicts_under_churn() {
        let mut params = ProxyParams::default_config();
        params.cache_mem = 1; // 1 MB
        let mut p = ProxyState::new(params);
        let mut admitted = Vec::new();
        for id in 0..5_000u64 {
            let bytes = object_size_bytes(id);
            if bytes <= 8 * 1024 {
                p.admit(id, bytes);
                admitted.push(id);
            }
        }
        assert!(p.mem_used_bytes() <= 1024 * 1024);
        // The earliest admitted small objects must have been evicted.
        let first = admitted[0];
        let outcome = p.lookup(first);
        assert_ne!(outcome, CacheOutcome::MemHit);
    }
}
