//! The MySQL-like database tier model.
//!
//! A query's path: acquire a **connection** (`max_connections`, waiters
//! queue), acquire a **run slot** (`thread_concurrency` — MySQL 3.23's
//! hint for how many threads execute concurrently), then execute: CPU
//! (inflated by table-cache misses, join-buffer shortfall, result-set
//! chunking through `net_buffer_length`, and context switching when the
//! run queue is long), possibly a data-page disk read, and for writes a
//! binlog flush that spills to disk when the transaction log exceeds
//! `binlog_cache_size`.

use crate::params::DbParams;
use crate::request::ReqId;
use simkit::resource::MultiServer;
use simkit::rng::{LognormalShape, SimRng};
use simkit::time::{SimDuration, SimTime};

/// Table-open penalty on a table-cache miss: descriptor setup CPU.
const TABLE_OPEN_CPU: SimDuration = SimDuration::from_micros(800);
/// Probability a table-cache miss also needs a disk read (.frm/.MYI).
const TABLE_OPEN_IO_PROB: f64 = 0.15;
/// Join working-set the TPC-W queries actually need (bytes) — anything
/// above this in `join_buffer_size` is pure memory waste, which is exactly
/// what the paper found.
const JOIN_NEEDED_BYTES: i64 = 256 * 1024;
/// CPU per result-set network chunk.
const NET_CHUNK_CPU: SimDuration = SimDuration::from_micros(30);
/// Bytes of result set per query (mean; modulates net chunking).
const RESULT_BYTES_MEAN: f64 = 24.0 * 1024.0;
/// Disk page read size for a data miss.
pub const DATA_PAGE_BYTES: u64 = 16 * 1024;

/// Per-node database state.
#[derive(Debug, Clone)]
pub struct DbState {
    pub params: DbParams,
    /// Connection slots (semaphore usage).
    pub conn_pool: MultiServer<ReqId>,
    /// Run slots implementing `thread_concurrency`.
    pub run_slots: MultiServer<ReqId>,
    /// Hot table descriptors the workload needs (from the catalogue scale).
    hot_table_slots: u64,
    /// Precomputed lognormal shapes for the per-query draws (fixed CVs;
    /// hoisting the `ln`/`sqrt` derivation off the hot path is
    /// bit-identical — see `LognormalShape`).
    cpu_shape: LognormalShape,
    result_shape: LognormalShape,
    binlog_shape: LognormalShape,
}

/// The execution cost of one query, decided at dispatch time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryCost {
    /// CPU demand (before node-level pressure scaling).
    pub cpu: SimDuration,
    /// Whether a data-page disk read is needed.
    pub disk_read: bool,
    /// Whether the binlog spilled and needs a disk flush.
    pub binlog_spill: bool,
}

impl DbState {
    pub fn new(params: DbParams, start: SimTime, hot_table_slots: u64) -> Self {
        DbState {
            params,
            conn_pool: MultiServer::new(start, params.max_connections.max(1) as u32, None),
            run_slots: MultiServer::new(start, params.thread_concurrency.max(1) as u32, None),
            hot_table_slots: hot_table_slots.max(1),
            cpu_shape: LognormalShape::from_cv(0.3),
            result_shape: LognormalShape::from_cv(0.6),
            binlog_shape: LognormalShape::from_cv(0.7),
        }
    }

    /// Probability a query misses the table cache.
    pub fn table_miss_prob(&self) -> f64 {
        let cache = self.params.table_cache.max(0) as f64;
        (1.0 - cache / self.hot_table_slots as f64).max(0.0)
    }

    /// Join-buffer inflation factor: a buffer smaller than the working set
    /// forces multi-pass joins.
    pub fn join_factor(&self) -> f64 {
        let buf = self.params.join_buffer_size.max(1);
        if buf >= JOIN_NEEDED_BYTES {
            1.0
        } else {
            // Passes scale with the shortfall; 128 KB => 2 passes.
            JOIN_NEEDED_BYTES as f64 / buf as f64
        }
    }

    /// Context-switch inflation from running more threads than cores.
    pub fn scheduling_factor(&self, cores: u32) -> f64 {
        let runnable = self.run_slots.busy();
        if runnable > cores {
            1.0 + 0.0015 * (runnable - cores) as f64
        } else {
            1.0
        }
    }

    /// Serialization loss when `thread_concurrency` is below the core
    /// count: the run-slot semaphore itself then throttles below hardware
    /// capacity, which the queueing model captures naturally — no extra
    /// factor needed here.
    ///
    /// Compute the full cost of one query.
    ///
    /// * `base_cpu_ms` / `io_prob` / `join_heavy` / `write_log_kb` come
    ///   from the interaction's demand profile.
    pub fn query_cost(
        &self,
        rng: &mut SimRng,
        base_cpu_ms: f64,
        io_prob: f64,
        join_heavy: bool,
        write_log_kb: f64,
        cores: u32,
    ) -> QueryCost {
        let mut cpu_ms = rng.lognormal_shaped(self.cpu_shape, base_cpu_ms.max(0.05));
        if join_heavy {
            cpu_ms *= self.join_factor();
        }

        // Table-cache miss: open-table CPU and maybe metadata I/O.
        let mut disk_read = rng.chance(io_prob);
        let mut cpu = SimDuration::from_millis_f64(cpu_ms);
        if rng.chance(self.table_miss_prob()) {
            cpu += TABLE_OPEN_CPU;
            if rng.chance(TABLE_OPEN_IO_PROB) {
                disk_read = true;
            }
        }

        // Result-set chunking through net_buffer_length.
        let result_bytes = rng.lognormal_shaped(self.result_shape, RESULT_BYTES_MEAN);
        let chunks = (result_bytes / self.params.net_buffer_length.max(1024) as f64)
            .ceil()
            .max(1.0) as u64;
        cpu += SimDuration::from_micros(NET_CHUNK_CPU.as_micros() * chunks);

        // Scheduling overhead at dispatch time.
        cpu = cpu.mul_f64(self.scheduling_factor(cores));

        // Binlog: transaction log bigger than the cache spills to disk.
        let binlog_spill = if write_log_kb > 0.0 {
            let log_bytes = rng.lognormal_shaped(self.binlog_shape, write_log_kb * 1024.0);
            log_bytes > self.params.binlog_cache_size.max(0) as f64
        } else {
            false
        };

        QueryCost {
            cpu,
            disk_read,
            binlog_spill,
        }
    }

    /// Connections currently waiting for a slot.
    pub fn conn_wait_len(&self) -> usize {
        self.conn_pool.queue_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db(params: DbParams) -> DbState {
        DbState::new(params, SimTime::ZERO, 640)
    }

    fn default_db() -> DbState {
        db(DbParams::default_config())
    }

    #[test]
    fn pools_sized_from_params() {
        let d = default_db();
        assert_eq!(d.conn_pool.servers(), 100);
        assert_eq!(d.run_slots.servers(), 10);
    }

    #[test]
    fn table_miss_prob_falls_with_cache() {
        let small = default_db(); // table_cache = 64, hot = 640
        assert!((small.table_miss_prob() - 0.9).abs() < 1e-9);
        let mut p = DbParams::default_config();
        p.table_cache = 640;
        assert_eq!(db(p).table_miss_prob(), 0.0);
        p.table_cache = 2_048;
        assert_eq!(db(p).table_miss_prob(), 0.0);
    }

    #[test]
    fn join_factor_saturates_at_needed_size() {
        let mut p = DbParams::default_config(); // 8 MB default
        assert_eq!(db(p).join_factor(), 1.0);
        p.join_buffer_size = 407_552; // paper's tuned value
        assert_eq!(
            db(p).join_factor(),
            1.0,
            "tuned-down buffer must cost nothing"
        );
        p.join_buffer_size = 131_072; // half the working set
        assert!((db(p).join_factor() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn binlog_spill_depends_on_cache_size() {
        let mut rng = SimRng::new(7);
        let small = default_db(); // 32 KB cache
        let spills = (0..2_000)
            .filter(|_| {
                small
                    .query_cost(&mut rng, 5.0, 0.0, false, 120.0, 2)
                    .binlog_spill
            })
            .count();
        // 120 KB mean log vs 32 KB cache: nearly always spills.
        assert!(spills > 1_800, "spills {spills}");

        let mut p = DbParams::default_config();
        p.binlog_cache_size = 1_048_576;
        let big = db(p);
        let spills_big = (0..2_000)
            .filter(|_| {
                big.query_cost(&mut rng, 5.0, 0.0, false, 120.0, 2)
                    .binlog_spill
            })
            .count();
        assert!(spills_big < 200, "spills_big {spills_big}");
    }

    #[test]
    fn read_only_queries_never_spill() {
        let mut rng = SimRng::new(9);
        let d = default_db();
        for _ in 0..500 {
            assert!(!d.query_cost(&mut rng, 3.0, 0.5, false, 0.0, 2).binlog_spill);
        }
    }

    #[test]
    fn net_buffer_reduces_cpu() {
        let mut rng_a = SimRng::new(11);
        let mut rng_b = SimRng::new(11);
        let mut small = DbParams::default_config();
        small.net_buffer_length = 1_024;
        let mut big = DbParams::default_config();
        big.net_buffer_length = 65_536;
        let n = 2_000;
        let cpu_small: u64 = (0..n)
            .map(|_| {
                db(small)
                    .query_cost(&mut rng_a, 5.0, 0.0, false, 0.0, 2)
                    .cpu
                    .as_micros()
            })
            .sum();
        let cpu_big: u64 = (0..n)
            .map(|_| {
                db(big)
                    .query_cost(&mut rng_b, 5.0, 0.0, false, 0.0, 2)
                    .cpu
                    .as_micros()
            })
            .sum();
        assert!(cpu_small > cpu_big, "{cpu_small} vs {cpu_big}");
    }

    #[test]
    fn scheduling_factor_grows_with_runnable_threads() {
        let mut p = DbParams::default_config();
        p.thread_concurrency = 100;
        let mut d = db(p);
        assert_eq!(d.scheduling_factor(2), 1.0);
        for r in 0..60 {
            d.run_slots.offer(SimTime::ZERO, r, SimDuration::ZERO);
        }
        let f = d.scheduling_factor(2);
        assert!(f > 1.05 && f < 1.15, "factor {f}");
    }

    #[test]
    fn disk_read_probability_respected() {
        let mut rng = SimRng::new(13);
        let mut p = DbParams::default_config();
        p.table_cache = 2_048; // no table-cache noise
        let d = db(p);
        let n = 5_000;
        let reads = (0..n)
            .filter(|_| d.query_cost(&mut rng, 3.0, 0.4, false, 0.0, 2).disk_read)
            .count();
        let frac = reads as f64 / n as f64;
        assert!((0.35..0.45).contains(&frac), "frac {frac}");
    }
}
