//! The Tomcat-like application tier model.
//!
//! Requests reaching the app tier first need an **HTTP processor thread**
//! (`minProcessors`/`maxProcessors`, backlog `acceptCount` — overflow is a
//! refused connection). Dynamic pages additionally need an **AJP worker**
//! (`AJPminProcessors`/`AJPmaxProcessors`/`AJPacceptCount`) for the servlet
//! container, and hold *both* threads for their entire residence —
//! including every database round-trip. That coupling is why the paper's
//! ordering workload tunes the pools up so aggressively.
//!
//! `bufferSize` sets the response I/O chunk: each chunk costs a little
//! CPU, so large responses on small buffers burn measurable cycles.

use crate::params::WebParams;
use crate::request::ReqId;
use simkit::resource::MultiServer;
use simkit::time::{SimDuration, SimTime};

/// Cost in CPU time to spawn a processor thread beyond the warm minimum.
const THREAD_SPAWN_CPU: SimDuration = SimDuration::from_micros(2_500);

/// CPU cost per response buffer chunk flushed.
const CHUNK_CPU: SimDuration = SimDuration::from_micros(40);

/// Per-node application-server state.
#[derive(Debug, Clone)]
pub struct AppState {
    pub params: WebParams,
    /// HTTP processor pool (semaphore usage: demand 0, held explicitly).
    pub http_pool: MultiServer<ReqId>,
    /// AJP worker pool.
    pub ajp_pool: MultiServer<ReqId>,
    refused: u64,
}

impl AppState {
    pub fn new(params: WebParams, start: SimTime) -> Self {
        let http = params.http_pool();
        let ajp = params.ajp_pool();
        AppState {
            params,
            http_pool: MultiServer::new(start, http.max, Some(http.accept as usize)),
            ajp_pool: MultiServer::new(start, ajp.max, Some(ajp.accept as usize)),
            refused: 0,
        }
    }

    /// CPU demand of servlet execution: base demand plus thread-spawn cost
    /// when the pool is already running beyond its warm minimum (Tomcat
    /// reaps idle threads down to `minProcessors`, so bursts re-create
    /// them), plus per-chunk response flushing.
    pub fn servlet_cpu(&self, base: SimDuration, response_bytes: u64) -> SimDuration {
        let mut cpu = base;
        if self.http_pool.busy() > self.params.http_pool().min {
            cpu += THREAD_SPAWN_CPU;
        }
        cpu += self.chunk_cpu(response_bytes);
        cpu
    }

    /// CPU to flush a response of `bytes` through `bufferSize` chunks.
    pub fn chunk_cpu(&self, bytes: u64) -> SimDuration {
        let buf = self.params.buffer_size.max(512) as u64;
        let chunks = bytes.div_ceil(buf).max(1);
        SimDuration::from_micros(CHUNK_CPU.as_micros() * chunks)
    }

    /// Scheduling overhead multiplier. Most held threads are *blocked* on
    /// downstream I/O (sleeping, nearly free); only a fraction are runnable
    /// at any instant, so the per-thread context-switch tax is mild.
    pub fn scheduling_factor(&self, cores: u32) -> f64 {
        let held = self.http_pool.busy() + self.ajp_pool.busy();
        if held > cores {
            1.0 + 0.0008 * (held - cores) as f64
        } else {
            1.0
        }
    }

    pub fn note_refused(&mut self) {
        self.refused += 1;
    }

    pub fn refused(&self) -> u64 {
        self.refused
    }

    /// Threads currently held (HTTP + AJP).
    pub fn threads_busy(&self) -> u32 {
        self.http_pool.busy() + self.ajp_pool.busy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::resource::Admission;

    fn app() -> AppState {
        AppState::new(WebParams::default_config(), SimTime::ZERO)
    }

    #[test]
    fn pools_sized_from_params() {
        let a = app();
        assert_eq!(a.http_pool.servers(), 20);
        assert_eq!(a.ajp_pool.servers(), 20);
    }

    #[test]
    fn accept_queue_overflows_at_accept_count() {
        let mut a = app();
        let t = SimTime::ZERO;
        // Fill all 20 threads.
        for r in 0..20 {
            assert_eq!(
                a.http_pool.offer(t, r, SimDuration::ZERO),
                Admission::Started
            );
        }
        // Fill the backlog (acceptCount = 10).
        for r in 20..30 {
            assert_eq!(
                a.http_pool.offer(t, r, SimDuration::ZERO),
                Admission::Enqueued
            );
        }
        // 31st is refused.
        assert_eq!(
            a.http_pool.offer(t, 30, SimDuration::ZERO),
            Admission::Rejected
        );
    }

    #[test]
    fn servlet_cpu_adds_spawn_beyond_min() {
        let mut a = app();
        let base = SimDuration::from_millis(5);
        let idle_cost = a.servlet_cpu(base, 4_096);
        // Occupy more threads than minProcessors (5).
        for r in 0..8 {
            a.http_pool.offer(SimTime::ZERO, r, SimDuration::ZERO);
        }
        let busy_cost = a.servlet_cpu(base, 4_096);
        assert!(busy_cost > idle_cost);
        assert_eq!(busy_cost - idle_cost, THREAD_SPAWN_CPU);
    }

    #[test]
    fn chunk_cpu_falls_with_bigger_buffers() {
        let mut small = WebParams::default_config();
        small.buffer_size = 512;
        let mut big = WebParams::default_config();
        big.buffer_size = 16_384;
        let a_small = AppState::new(small, SimTime::ZERO);
        let a_big = AppState::new(big, SimTime::ZERO);
        let bytes = 64 * 1024;
        assert!(a_small.chunk_cpu(bytes) > a_big.chunk_cpu(bytes));
        // 64 KB / 512 B = 128 chunks.
        assert_eq!(a_small.chunk_cpu(bytes), SimDuration::from_micros(128 * 40));
    }

    #[test]
    fn scheduling_factor_kicks_in_when_oversubscribed() {
        let mut params = WebParams::default_config();
        params.max_processors = 200;
        let mut a = AppState::new(params, SimTime::ZERO);
        assert_eq!(a.scheduling_factor(2), 1.0);
        for r in 0..100 {
            a.http_pool.offer(SimTime::ZERO, r, SimDuration::ZERO);
        }
        let f = a.scheduling_factor(2);
        assert!(f > 1.05 && f < 1.15, "factor {f}");
    }

    #[test]
    fn refused_counter() {
        let mut a = app();
        a.note_refused();
        a.note_refused();
        assert_eq!(a.refused(), 2);
    }
}
