//! Byte-capacity LRU object cache — the substrate of the Squid model's
//! memory and disk stores.
//!
//! Implemented as a slab-backed doubly-linked list plus a hash index:
//! O(1) lookup, touch, insert, and evict, with no per-operation allocation
//! once warm (freed slots are reused). The index hashes with
//! [`simkit::hash::FxHasher64`] — the cache sits on the per-event hot path
//! and SipHash was a measurable slice of the lookup cost; bucket placement
//! never feeds back into simulation outputs, so the swap is
//! trace-invariant.

use simkit::hash::FxHashMap;

/// Cache object key (object id in the simulated catalogue).
pub type ObjectId = u64;

const NIL: usize = usize::MAX;

#[derive(Debug, Clone)]
struct Entry {
    key: ObjectId,
    bytes: u64,
    prev: usize,
    next: usize,
}

/// An LRU cache bounded by total bytes.
#[derive(Debug, Clone)]
pub struct LruCache {
    capacity_bytes: u64,
    used_bytes: u64,
    map: FxHashMap<ObjectId, usize>,
    slab: Vec<Entry>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl LruCache {
    pub fn new(capacity_bytes: u64) -> Self {
        LruCache {
            capacity_bytes,
            used_bytes: 0,
            map: FxHashMap::default(),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Look up `key`; on a hit the entry becomes most-recently-used.
    pub fn get(&mut self, key: ObjectId) -> bool {
        match self.map.get(&key).copied() {
            Some(idx) => {
                self.hits += 1;
                self.move_to_front(idx);
                true
            }
            None => {
                self.misses += 1;
                false
            }
        }
    }

    /// Peek without updating recency or hit statistics.
    pub fn contains(&self, key: ObjectId) -> bool {
        self.map.contains_key(&key)
    }

    /// Insert `key` with `bytes`, evicting LRU entries as needed. Objects
    /// larger than the whole capacity are not admitted. If the key is
    /// already present it is refreshed (size updated, moved to front).
    /// Returns true if the object resides in the cache afterwards.
    pub fn insert(&mut self, key: ObjectId, bytes: u64) -> bool {
        if bytes > self.capacity_bytes || bytes == 0 {
            return false;
        }
        if let Some(idx) = self.map.get(&key).copied() {
            // Refresh: adjust accounting for a size change.
            self.used_bytes = self.used_bytes - self.slab[idx].bytes + bytes;
            self.slab[idx].bytes = bytes;
            self.move_to_front(idx);
            self.evict_to_capacity();
            return self.map.contains_key(&key);
        }
        self.evict_until_fits(bytes);
        let entry = Entry {
            key,
            bytes,
            prev: NIL,
            next: self.head,
        };
        let idx = match self.free.pop() {
            Some(i) => {
                self.slab[i] = entry;
                i
            }
            None => {
                self.slab.push(entry);
                self.slab.len() - 1
            }
        };
        if self.head != NIL {
            self.slab[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
        self.map.insert(key, idx);
        self.used_bytes += bytes;
        true
    }

    /// Remove a specific key.
    pub fn remove(&mut self, key: ObjectId) -> bool {
        match self.map.remove(&key) {
            Some(idx) => {
                self.unlink(idx);
                self.used_bytes -= self.slab[idx].bytes;
                self.free.push(idx);
                true
            }
            None => false,
        }
    }

    /// Evict LRU entries until `used + incoming <= capacity`.
    fn evict_until_fits(&mut self, incoming: u64) {
        while self.used_bytes + incoming > self.capacity_bytes && self.tail != NIL {
            self.evict_lru();
        }
    }

    fn evict_to_capacity(&mut self) {
        while self.used_bytes > self.capacity_bytes && self.tail != NIL {
            self.evict_lru();
        }
    }

    fn evict_lru(&mut self) {
        let idx = self.tail;
        debug_assert!(idx != NIL);
        let key = self.slab[idx].key;
        self.map.remove(&key);
        self.unlink(idx);
        self.used_bytes -= self.slab[idx].bytes;
        self.free.push(idx);
        self.evictions += 1;
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.slab[idx].prev = NIL;
        self.slab[idx].next = NIL;
    }

    fn move_to_front(&mut self, idx: usize) {
        if self.head == idx {
            return;
        }
        self.unlink(idx);
        self.slab[idx].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Occupancy fraction in `[0, 1]`.
    pub fn occupancy(&self) -> f64 {
        if self.capacity_bytes == 0 {
            0.0
        } else {
            self.used_bytes as f64 / self.capacity_bytes as f64
        }
    }

    pub fn hits(&self) -> u64 {
        self.hits
    }

    pub fn misses(&self) -> u64 {
        self.misses
    }

    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Hit ratio of lookups so far (0 when no lookups).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Drop everything (server restart between tuning iterations).
    pub fn clear(&mut self) {
        self.map.clear();
        self.slab.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        self.used_bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_get() {
        let mut c = LruCache::new(1000);
        assert!(c.insert(1, 100));
        assert!(c.get(1));
        assert!(!c.get(2));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert_eq!(c.used_bytes(), 100);
    }

    #[test]
    fn evicts_lru_order() {
        let mut c = LruCache::new(300);
        c.insert(1, 100);
        c.insert(2, 100);
        c.insert(3, 100);
        // Touch 1 so 2 becomes LRU.
        assert!(c.get(1));
        c.insert(4, 100);
        assert!(c.contains(1));
        assert!(!c.contains(2), "2 was LRU and must be evicted");
        assert!(c.contains(3));
        assert!(c.contains(4));
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn big_object_evicts_many() {
        let mut c = LruCache::new(300);
        c.insert(1, 100);
        c.insert(2, 100);
        c.insert(3, 100);
        assert!(c.insert(4, 250));
        assert_eq!(c.len(), 1);
        assert!(c.contains(4));
        assert_eq!(c.used_bytes(), 250);
    }

    #[test]
    fn oversized_object_rejected() {
        let mut c = LruCache::new(100);
        c.insert(1, 50);
        assert!(!c.insert(2, 150));
        assert!(c.contains(1), "rejection must not disturb residents");
        assert!(!c.insert(3, 0), "zero-size objects are not cacheable");
    }

    #[test]
    fn refresh_updates_size_and_recency() {
        let mut c = LruCache::new(300);
        c.insert(1, 100);
        c.insert(2, 100);
        assert!(c.insert(1, 200)); // refresh 1 bigger; 1 becomes MRU
        assert_eq!(c.used_bytes(), 300);
        c.insert(3, 100); // must evict 2 (LRU), not 1
        assert!(c.contains(1));
        assert!(!c.contains(2));
    }

    #[test]
    fn remove_frees_space() {
        let mut c = LruCache::new(200);
        c.insert(1, 150);
        assert!(c.remove(1));
        assert!(!c.remove(1));
        assert_eq!(c.used_bytes(), 0);
        assert!(c.insert(2, 200));
    }

    #[test]
    fn slot_reuse_does_not_leak() {
        let mut c = LruCache::new(1000);
        for round in 0..50u64 {
            for k in 0..10u64 {
                c.insert(round * 10 + k, 100);
            }
        }
        // Slab should be bounded by the max resident count, not total
        // inserts.
        assert!(c.slab.len() <= 11, "slab grew to {}", c.slab.len());
        assert_eq!(c.len(), 10);
    }

    #[test]
    fn hit_ratio_tracks() {
        let mut c = LruCache::new(1000);
        c.insert(1, 10);
        c.get(1);
        c.get(1);
        c.get(99);
        assert!((c.hit_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn clear_resets_contents_but_not_stats() {
        let mut c = LruCache::new(100);
        c.insert(1, 50);
        c.get(1);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.used_bytes(), 0);
        assert!(!c.contains(1));
        assert!(c.insert(2, 100));
    }

    #[test]
    fn occupancy_fraction() {
        let mut c = LruCache::new(200);
        c.insert(1, 50);
        assert!((c.occupancy() - 0.25).abs() < 1e-12);
        let z = LruCache::new(0);
        assert_eq!(z.occupancy(), 0.0);
    }

    #[test]
    fn heavy_churn_consistency() {
        // Invariant check under a mixed op sequence.
        let mut c = LruCache::new(5_000);
        let mut model: std::collections::HashSet<u64> = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            let k = i % 97;
            let size = 40 + (i % 13) * 17;
            if i % 3 == 0 {
                c.insert(k, size);
            } else if i % 3 == 1 {
                c.get(k);
            } else if i % 7 == 0 {
                c.remove(k);
            }
            model.clear();
        }
        // Accounting invariant: used == sum of resident sizes <= capacity.
        assert!(c.used_bytes() <= c.capacity_bytes());
        let resident: u64 = c.map.values().map(|&idx| c.slab[idx].bytes).sum();
        assert_eq!(resident, c.used_bytes());
    }
}
