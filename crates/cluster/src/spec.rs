//! Hardware specification of cluster nodes (Table 2 of the paper).

use simkit::time::SimDuration;

/// Hardware of one cluster machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeSpec {
    /// Number of processors (paper: dual Athlon).
    pub cores: u32,
    /// Relative CPU speed multiplier (1.0 = the paper's 1.67 GHz Athlon).
    /// Service demands in the workload profiles are expressed at 1.0.
    pub cpu_scale: f64,
    /// Physical memory in MB (paper: 1 GByte).
    pub memory_mb: f64,
    /// Average disk positioning time per random I/O.
    pub disk_seek: SimDuration,
    /// Sequential disk transfer rate, MB/s.
    pub disk_mb_per_s: f64,
    /// Network interface rate, Mbit/s (paper: 100 Mbps Ethernet).
    pub nic_mbps: f64,
}

impl NodeSpec {
    /// The paper's machines: dual 1.67 GHz, 1 GB, 100 Mbps.
    pub fn hpdc04() -> Self {
        NodeSpec {
            cores: 2,
            cpu_scale: 1.0,
            memory_mb: 1024.0,
            // 2002-era IDE disk: ~9 ms average positioning (seek +
            // rotational latency), ~40 MB/s sequential.
            disk_seek: SimDuration::from_millis_f64(9.0),
            disk_mb_per_s: 40.0,
            nic_mbps: 100.0,
        }
    }

    /// Time to move `bytes` over the NIC (transfer only, no queueing).
    pub fn nic_transfer(&self, bytes: u64) -> SimDuration {
        let secs = bytes as f64 * 8.0 / (self.nic_mbps * 1e6);
        SimDuration::from_secs_f64(secs)
    }

    /// Time for one random disk I/O of `bytes`.
    pub fn disk_io(&self, bytes: u64) -> SimDuration {
        let xfer = bytes as f64 / (self.disk_mb_per_s * 1e6);
        self.disk_seek + SimDuration::from_secs_f64(xfer)
    }

    /// Time for a sequential append of `bytes` (log flushes): transfer plus
    /// a small fixed latency, no positioning cost.
    pub fn disk_seq_write(&self, bytes: u64) -> SimDuration {
        let xfer = bytes as f64 / (self.disk_mb_per_s * 1e6);
        SimDuration::from_micros(300) + SimDuration::from_secs_f64(xfer)
    }

    /// Scale a CPU demand expressed at reference speed to this node.
    pub fn cpu_time(&self, demand: SimDuration) -> SimDuration {
        demand.mul_f64(1.0 / self.cpu_scale.max(1e-9))
    }

    pub fn validate(&self) -> Result<(), String> {
        if self.cores == 0 {
            return Err("node needs at least one core".into());
        }
        if self.cpu_scale <= 0.0 {
            return Err("cpu_scale must be positive".into());
        }
        if self.memory_mb <= 0.0 {
            return Err("memory must be positive".into());
        }
        if self.disk_mb_per_s <= 0.0 || self.nic_mbps <= 0.0 {
            return Err("disk/NIC rates must be positive".into());
        }
        Ok(())
    }
}

impl Default for NodeSpec {
    fn default() -> Self {
        NodeSpec::hpdc04()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hpdc04_matches_table2() {
        let s = NodeSpec::hpdc04();
        assert_eq!(s.cores, 2);
        assert_eq!(s.memory_mb, 1024.0);
        assert_eq!(s.nic_mbps, 100.0);
        assert!(s.validate().is_ok());
    }

    #[test]
    fn nic_transfer_scales_linearly() {
        let s = NodeSpec::hpdc04();
        // 100 Mbps = 12.5 MB/s; 12_500 bytes take 1 ms.
        assert_eq!(s.nic_transfer(12_500), SimDuration::from_millis(1));
        assert_eq!(s.nic_transfer(0), SimDuration::ZERO);
    }

    #[test]
    fn disk_io_includes_seek() {
        let s = NodeSpec::hpdc04();
        let t = s.disk_io(40_000); // 1 ms transfer at 40 MB/s + 9 ms seek
        assert_eq!(t, SimDuration::from_millis(10));
    }

    #[test]
    fn seq_write_has_no_seek() {
        let s = NodeSpec::hpdc04();
        let seq = s.disk_seq_write(40_000);
        let rand = s.disk_io(40_000);
        assert!(seq < rand);
        assert_eq!(seq, SimDuration::from_micros(1_300));
    }

    #[test]
    fn cpu_time_scales_inversely_with_speed() {
        let mut s = NodeSpec::hpdc04();
        s.cpu_scale = 2.0;
        assert_eq!(
            s.cpu_time(SimDuration::from_millis(10)),
            SimDuration::from_millis(5)
        );
    }

    #[test]
    fn validate_rejects_nonsense() {
        let mut s = NodeSpec::hpdc04();
        s.cores = 0;
        assert!(s.validate().is_err());
        let mut s = NodeSpec::hpdc04();
        s.cpu_scale = 0.0;
        assert!(s.validate().is_err());
        let mut s = NodeSpec::hpdc04();
        s.memory_mb = -5.0;
        assert!(s.validate().is_err());
    }
}
