//! Tuning sessions: the closed loop between Active Harmony and the
//! simulated cluster.
//!
//! A session fixes the environment (topology, workload, browser
//! population, measurement plan) and runs tuning iterations: each
//! iteration the Harmony server(s) propose a configuration, the cluster
//! runs one warm-up/measure/cool-down cycle under it, and the measured
//! WIPS feeds back. The per-iteration seed varies (unless pinned) so the
//! tuner faces realistic measurement noise, exactly as on real hardware.

use crate::binding;
use cluster::config::{ClusterConfig, Role, Topology};
use cluster::model::ClusterScenario;
use cluster::runner::{run_iteration, IterationOutcome};
use cluster::spec::NodeSpec;
use harmony::server::HarmonyServer;
use harmony::simplex::SimplexTuner;
use harmony::strategy::TuningMethod;
use harmony::workline::build_work_lines;
use serde::{Deserialize, Serialize};
use tpcw::metrics::IntervalPlan;
use tpcw::mix::Workload;
use tpcw::scale::CatalogScale;

/// Environment of a tuning session.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    pub topology: Topology,
    pub workload: Workload,
    pub population: u32,
    pub plan: IntervalPlan,
    pub scale: CatalogScale,
    pub spec: NodeSpec,
    /// Base RNG seed; iteration `i` runs with `base_seed + i` unless
    /// `pin_seed` is set.
    pub base_seed: u64,
    /// Use the same seed every iteration (noise-free tuning, for tests).
    pub pin_seed: bool,
    /// Walk the TPC-W Markov navigation graph instead of i.i.d. mix
    /// sampling (same steady-state frequencies; see `tpcw::navigation`).
    pub markov_sessions: bool,
    /// Per-node hardware overrides (failure injection); entry `i`
    /// replaces `spec` for node `i`.
    pub node_specs: Vec<Option<NodeSpec>>,
}

impl SessionConfig {
    pub fn new(topology: Topology, workload: Workload, population: u32) -> Self {
        SessionConfig {
            topology,
            workload,
            population,
            plan: IntervalPlan::fast(),
            scale: CatalogScale::hpdc04(),
            spec: NodeSpec::hpdc04(),
            base_seed: 0x5EED,
            pin_seed: false,
            markov_sessions: false,
            node_specs: Vec::new(),
        }
    }

    /// Degrade node `node` to `cpu_scale` of nominal CPU speed.
    pub fn degrade_cpu(&mut self, node: usize, cpu_scale: f64) {
        if self.node_specs.len() <= node {
            self.node_specs.resize(self.topology.len(), None);
        }
        let mut spec = self.node_specs[node].unwrap_or(self.spec);
        spec.cpu_scale = cpu_scale;
        self.node_specs[node] = Some(spec);
    }

    fn seed_for(&self, iteration: u32) -> u64 {
        if self.pin_seed {
            self.base_seed
        } else {
            self.base_seed.wrapping_add(iteration as u64)
        }
    }

    /// Build the scenario for one iteration.
    pub fn scenario(&self, config: ClusterConfig, iteration: u32) -> ClusterScenario {
        ClusterScenario {
            spec: self.spec,
            topology: self.topology.clone(),
            config,
            workload: self.workload,
            scale: self.scale,
            browsers: tpcw::browser::BrowserConfig::hpdc04(self.population),
            plan: self.plan,
            seed: self.seed_for(iteration),
            lines: None,
            markov_sessions: self.markov_sessions,
            load_balancing: cluster::model::LoadBalancing::default(),
            node_specs: self.node_specs.clone(),
        }
    }

    /// Evaluate one configuration (one iteration cycle).
    pub fn evaluate(&self, config: ClusterConfig, iteration: u32) -> IterationOutcome {
        run_iteration(&self.scenario(config, iteration))
    }

    /// Measure the default configuration over `reps` independent seeds:
    /// the Table 4 "None (No Tuning)" row.
    pub fn measure_default(&self, reps: u32) -> (f64, f64) {
        let mut stats = simkit::stats::Welford::new();
        for i in 0..reps {
            let out = self.evaluate(ClusterConfig::defaults(&self.topology), i);
            stats.record(out.metrics.wips);
        }
        (stats.mean(), stats.std_dev())
    }

    /// Measure a configuration with sequential sampling: add replications
    /// until the 95% confidence half-width falls below
    /// `target_rel × mean`, up to `max_reps`. Returns the interval.
    pub fn measure_until_precise(
        &self,
        config: &ClusterConfig,
        target_rel: f64,
        max_reps: u32,
    ) -> simkit::ci::ConfidenceInterval {
        let mut samples = Vec::new();
        for i in 0..max_reps.max(2) {
            let out = self.evaluate(config.clone(), i);
            samples.push(out.metrics.wips);
            if samples.len() >= 2 {
                let ci = simkit::ci::replication_ci(&samples);
                if ci.relative_precision() <= target_rel {
                    return ci;
                }
            }
        }
        simkit::ci::replication_ci(&samples)
    }
}

/// One tuning iteration's record in a session trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IterationRecord {
    pub iteration: u32,
    /// Overall cluster WIPS measured this iteration.
    pub wips: f64,
    /// Per-work-line WIPS (single entry when unpartitioned).
    pub line_wips: Vec<f64>,
    /// Workload active this iteration (changes in schedule sessions).
    pub workload: Workload,
    /// Requests refused at admission.
    pub failed: u64,
}

/// Result of a tuning run.
#[derive(Debug, Clone)]
pub struct TuningRun {
    pub method: TuningMethod,
    pub records: Vec<IterationRecord>,
    /// Best configuration evaluated, with its WIPS.
    pub best_config: ClusterConfig,
    pub best_wips: f64,
    /// Iteration at which the best configuration was first evaluated.
    pub convergence_iteration: u32,
}

impl TuningRun {
    /// WIPS series (figure y-axis).
    pub fn wips_series(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.wips).collect()
    }

    /// Mean and standard deviation over `[start, end)` iterations — the
    /// paper's "second 100 iterations" statistics.
    pub fn window_stats(&self, start: usize, end: usize) -> (f64, f64) {
        let mut w = simkit::stats::Welford::new();
        for r in self.records.iter().take(end).skip(start) {
            w.record(r.wips);
        }
        (w.mean(), w.std_dev())
    }

    /// First iteration whose WIPS reaches `frac` of the best seen in the
    /// whole run — a noise-robust "iterations to converge" (the arg-max
    /// iteration keeps moving by measurement noise long after the tuner
    /// has effectively converged).
    pub fn first_within(&self, frac: f64) -> u32 {
        let target = self.best_wips * frac;
        self.records
            .iter()
            .find(|r| r.wips >= target)
            .map(|r| r.iteration)
            .unwrap_or(self.convergence_iteration)
    }

    /// Fraction of iterations in `[start, end)` beating `reference` WIPS.
    pub fn fraction_above(&self, start: usize, end: usize, reference: f64) -> f64 {
        let window: Vec<_> = self.records.iter().take(end).skip(start).collect();
        if window.is_empty() {
            return 0.0;
        }
        window.iter().filter(|r| r.wips > reference).count() as f64 / window.len() as f64
    }
}

/// Internal: track best-seen config across a run.
struct BestConfig {
    config: ClusterConfig,
    wips: f64,
    iteration: u32,
}

impl BestConfig {
    fn new(initial: ClusterConfig) -> Self {
        BestConfig {
            config: initial,
            wips: f64::NEG_INFINITY,
            iteration: 0,
        }
    }

    fn consider(&mut self, config: &ClusterConfig, wips: f64, iteration: u32) {
        if wips > self.wips {
            self.config = config.clone();
            self.wips = wips;
            self.iteration = iteration;
        }
    }
}

/// Tune with the paper's **default method**: one Harmony server over every
/// parameter of every node.
pub fn tune_default_method(cfg: &SessionConfig, iterations: u32) -> TuningRun {
    let space = binding::full_space(&cfg.topology);
    let mut server = HarmonyServer::new("all-nodes", Box::new(SimplexTuner::new(space)));
    let mut records = Vec::with_capacity(iterations as usize);
    let mut best = BestConfig::new(ClusterConfig::defaults(&cfg.topology));
    for i in 0..iterations {
        let proposal = server.next_config();
        let config = binding::config_from_full(&cfg.topology, &proposal);
        let out = cfg.evaluate(config.clone(), i);
        let wips = out.metrics.wips;
        server.report(wips);
        best.consider(&config, wips, i);
        records.push(IterationRecord {
            iteration: i,
            wips,
            line_wips: out.line_wips,
            workload: cfg.workload,
            failed: out.total_failed,
        });
    }
    TuningRun {
        method: TuningMethod::Default,
        records,
        best_config: best.config,
        best_wips: best.wips,
        convergence_iteration: best.iteration,
    }
}

/// Tune with **parameter duplication**: one server per tier (7/7/9
/// dimensions), every tier's values replicated across its nodes, all three
/// servers fed the same overall WIPS.
pub fn tune_duplication(cfg: &SessionConfig, iterations: u32) -> TuningRun {
    let mut servers = [
        HarmonyServer::new(
            "proxy-tier",
            Box::new(SimplexTuner::new(binding::role_space(Role::Proxy))),
        ),
        HarmonyServer::new(
            "web-tier",
            Box::new(SimplexTuner::new(binding::role_space(Role::App))),
        ),
        HarmonyServer::new(
            "db-tier",
            Box::new(SimplexTuner::new(binding::role_space(Role::Db))),
        ),
    ];
    let mut records = Vec::with_capacity(iterations as usize);
    let mut best = BestConfig::new(ClusterConfig::defaults(&cfg.topology));
    for i in 0..iterations {
        let pc = servers[0].next_config();
        let wc = servers[1].next_config();
        let dc = servers[2].next_config();
        let config = binding::config_from_roles(&cfg.topology, &pc, &wc, &dc);
        let out = cfg.evaluate(config.clone(), i);
        let wips = out.metrics.wips;
        for s in &mut servers {
            s.report(wips);
        }
        best.consider(&config, wips, i);
        records.push(IterationRecord {
            iteration: i,
            wips,
            line_wips: out.line_wips,
            workload: cfg.workload,
            failed: out.total_failed,
        });
    }
    TuningRun {
        method: TuningMethod::Duplication,
        records,
        best_config: best.config,
        best_wips: best.wips,
        convergence_iteration: best.iteration,
    }
}

/// Tune with **parameter partitioning**: the cluster is split into work
/// lines; each line gets its own server (23 dimensions) fed by *its own
/// line's* throughput, and requests never cross lines.
pub fn tune_partitioning(cfg: &SessionConfig, iterations: u32) -> TuningRun {
    let nodes: Vec<(usize, u8)> = cfg
        .topology
        .roles()
        .iter()
        .enumerate()
        .map(|(i, r)| {
            (
                i,
                match r {
                    Role::Proxy => 0u8,
                    Role::App => 1,
                    Role::Db => 2,
                },
            )
        })
        .collect();
    let lines = build_work_lines(&nodes).expect("topology has every tier");
    let mut servers: Vec<HarmonyServer> = (0..lines.len())
        .map(|i| {
            HarmonyServer::new(
                format!("line-{i}"),
                Box::new(SimplexTuner::new(binding::tier_space())),
            )
        })
        .collect();

    let mut records = Vec::with_capacity(iterations as usize);
    let mut best = BestConfig::new(ClusterConfig::defaults(&cfg.topology));
    for i in 0..iterations {
        let mut config = ClusterConfig::defaults(&cfg.topology);
        for (server, line) in servers.iter_mut().zip(&lines) {
            let proposal = server.next_config();
            binding::apply_line_config(&mut config, &cfg.topology, &line.nodes, &proposal);
        }
        let mut scenario = cfg.scenario(config.clone(), i);
        scenario.lines = Some(lines.iter().map(|l| l.nodes.clone()).collect());
        let out = run_iteration(&scenario);
        let wips = out.metrics.wips;
        for (s, line_wips) in servers.iter_mut().zip(&out.line_wips) {
            s.report(*line_wips);
        }
        best.consider(&config, wips, i);
        records.push(IterationRecord {
            iteration: i,
            wips,
            line_wips: out.line_wips,
            workload: cfg.workload,
            failed: out.total_failed,
        });
    }
    TuningRun {
        method: TuningMethod::Partitioning,
        records,
        best_config: best.config,
        best_wips: best.wips,
        convergence_iteration: best.iteration,
    }
}

/// The paper's future-work **hybrid**: duplication for the first
/// `switch_at` iterations, then per-line fine tuning seeded from the
/// duplication result.
pub fn tune_hybrid(cfg: &SessionConfig, iterations: u32, switch_at: u32) -> TuningRun {
    let switch_at = switch_at.min(iterations);
    let mut coarse = tune_duplication(cfg, switch_at);

    // Seed per-line tuning from the duplication best.
    let seed_tier = binding::tier_config_from(&coarse.best_config, &cfg.topology)
        .expect("uniform config extractable");
    let nodes: Vec<(usize, u8)> = cfg
        .topology
        .roles()
        .iter()
        .enumerate()
        .map(|(i, r)| {
            (
                i,
                match r {
                    Role::Proxy => 0u8,
                    Role::App => 1,
                    Role::Db => 2,
                },
            )
        })
        .collect();
    let lines = build_work_lines(&nodes).expect("topology has every tier");
    let mut servers: Vec<HarmonyServer> = (0..lines.len())
        .map(|i| {
            HarmonyServer::new(
                format!("line-{i}"),
                Box::new(SimplexTuner::with_seed(
                    binding::tier_space(),
                    seed_tier.clone(),
                )),
            )
        })
        .collect();

    let mut best = BestConfig::new(coarse.best_config.clone());
    best.wips = coarse.best_wips;
    best.iteration = coarse.convergence_iteration;
    for i in switch_at..iterations {
        let mut config = coarse.best_config.clone();
        for (server, line) in servers.iter_mut().zip(&lines) {
            let proposal = server.next_config();
            binding::apply_line_config(&mut config, &cfg.topology, &line.nodes, &proposal);
        }
        let mut scenario = cfg.scenario(config.clone(), i);
        scenario.lines = Some(lines.iter().map(|l| l.nodes.clone()).collect());
        let out = run_iteration(&scenario);
        let wips = out.metrics.wips;
        for (s, line_wips) in servers.iter_mut().zip(&out.line_wips) {
            s.report(*line_wips);
        }
        best.consider(&config, wips, i);
        coarse.records.push(IterationRecord {
            iteration: i,
            wips,
            line_wips: out.line_wips,
            workload: cfg.workload,
            failed: out.total_failed,
        });
    }
    TuningRun {
        method: TuningMethod::Hybrid,
        records: coarse.records,
        best_config: best.config,
        best_wips: best.wips,
        convergence_iteration: best.iteration,
    }
}

/// Dispatch by method (None yields a flat run of the default config).
pub fn tune(cfg: &SessionConfig, method: TuningMethod, iterations: u32) -> TuningRun {
    match method {
        TuningMethod::None => {
            let mut records = Vec::with_capacity(iterations as usize);
            let default = ClusterConfig::defaults(&cfg.topology);
            let mut best = BestConfig::new(default.clone());
            for i in 0..iterations {
                let out = cfg.evaluate(default.clone(), i);
                best.consider(&default, out.metrics.wips, i);
                records.push(IterationRecord {
                    iteration: i,
                    wips: out.metrics.wips,
                    line_wips: out.line_wips,
                    workload: cfg.workload,
                    failed: out.total_failed,
                });
            }
            TuningRun {
                method: TuningMethod::None,
                records,
                best_config: best.config,
                best_wips: best.wips,
                convergence_iteration: 0,
            }
        }
        TuningMethod::Default => tune_default_method(cfg, iterations),
        TuningMethod::Duplication => tune_duplication(cfg, iterations),
        TuningMethod::Partitioning => tune_partitioning(cfg, iterations),
        TuningMethod::Hybrid => tune_hybrid(cfg, iterations, iterations / 3),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg(workload: Workload) -> SessionConfig {
        let mut c = SessionConfig::new(Topology::single(), workload, 300);
        c.plan = IntervalPlan::tiny();
        c
    }

    #[test]
    fn default_method_runs_and_records() {
        let cfg = quick_cfg(Workload::Shopping);
        let run = tune_default_method(&cfg, 8);
        assert_eq!(run.records.len(), 8);
        assert!(run.best_wips > 0.0);
        assert!(run.convergence_iteration < 8);
        assert_eq!(run.method, TuningMethod::Default);
    }

    #[test]
    fn duplication_replicates_values() {
        let mut cfg = quick_cfg(Workload::Browsing);
        cfg.topology = Topology::tiers(2, 1, 1).unwrap();
        let run = tune_duplication(&cfg, 5);
        let best = &run.best_config;
        assert_eq!(
            best.node(0).as_proxy().unwrap(),
            best.node(1).as_proxy().unwrap(),
            "duplication must keep tier nodes identical"
        );
    }

    #[test]
    fn partitioning_reports_per_line() {
        let mut cfg = quick_cfg(Workload::Shopping);
        cfg.topology = Topology::tiers(2, 2, 2).unwrap();
        cfg.population = 400;
        let run = tune_partitioning(&cfg, 5);
        assert_eq!(run.records[0].line_wips.len(), 2);
        assert!(run.best_wips > 0.0);
    }

    #[test]
    fn none_method_is_flat_default() {
        let cfg = quick_cfg(Workload::Ordering);
        let run = tune(&cfg, TuningMethod::None, 3);
        assert_eq!(run.records.len(), 3);
        assert_eq!(run.best_config, ClusterConfig::defaults(&cfg.topology));
    }

    #[test]
    fn hybrid_switches_methods() {
        let mut cfg = quick_cfg(Workload::Shopping);
        cfg.topology = Topology::tiers(2, 2, 2).unwrap();
        cfg.population = 400;
        let run = tune_hybrid(&cfg, 9, 4);
        assert_eq!(run.records.len(), 9);
        assert_eq!(run.method, TuningMethod::Hybrid);
    }

    #[test]
    fn pinned_seed_is_deterministic() {
        let mut cfg = quick_cfg(Workload::Shopping);
        cfg.pin_seed = true;
        let a = tune_default_method(&cfg, 4);
        let b = tune_default_method(&cfg, 4);
        assert_eq!(a.wips_series(), b.wips_series());
    }

    #[test]
    fn sequential_sampling_tightens_the_interval() {
        let cfg = quick_cfg(Workload::Shopping);
        let default = ClusterConfig::defaults(&cfg.topology);
        let loose = cfg.measure_until_precise(&default, 0.5, 3);
        assert!(loose.samples >= 2);
        assert!(loose.mean > 0.0);
        // A tight target forces more replications (up to the cap).
        let tight = cfg.measure_until_precise(&default, 0.0001, 4);
        assert!(tight.samples >= loose.samples);
        assert!(tight.samples <= 4);
    }

    #[test]
    fn window_stats_and_fraction() {
        let cfg = quick_cfg(Workload::Shopping);
        let run = tune(&cfg, TuningMethod::None, 6);
        let (mean, sd) = run.window_stats(0, 6);
        assert!(mean > 0.0);
        assert!(sd >= 0.0);
        assert_eq!(run.fraction_above(0, 6, 0.0), 1.0);
        assert_eq!(run.fraction_above(0, 6, f64::INFINITY), 0.0);
    }
}
