//! Tuning sessions: the closed loop between Active Harmony and the
//! simulated cluster.
//!
//! A session fixes the environment (topology, workload, browser
//! population, measurement plan) and runs tuning iterations: each
//! iteration the Harmony server(s) propose a configuration, the cluster
//! runs one warm-up/measure/cool-down cycle under it, and the measured
//! WIPS feeds back. The per-iteration seed varies (unless pinned) so the
//! tuner faces realistic measurement noise, exactly as on real hardware.

use crate::binding;
use crate::checkpoint::{self, CheckpointPolicy, Checkpointer};
use crate::eval::{EvalCounters, EvalEngine, EvalSettings};
use cluster::config::{ClusterConfig, NodeId, Role, Topology};
use cluster::model::{ClusterScenario, LoadModel};
use cluster::runner::{run_iteration, run_iteration_observed, IterationOutcome};
use cluster::spec::NodeSpec;
use faults::{FaultClock, FaultInjector, FaultPlan, WindowFaults};
use harmony::server::HarmonyServer;
use harmony::space::Configuration;
use harmony::strategy::TuningMethod;
use harmony::tuner::Measurement;
use harmony::workline::build_work_lines;
use obs::{Registry, TraceRecord, TraceSink};
use persist::{Checkpointable, PersistError, State};
use tpcw::metrics::IntervalPlan;
use tpcw::mix::Workload;
use tpcw::scale::CatalogScale;

use std::sync::Arc;
use std::time::Instant;

/// Recoverable failures of a tuning session. Everything that used to
/// panic inside the session layer now surfaces here so the CLI can exit
/// with a message instead of a backtrace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// The topology is missing a whole tier (no proxy, app, or db node),
    /// so no work line can be formed.
    MissingTier,
    /// A per-tier configuration could not be extracted from a full
    /// cluster configuration (tier nodes disagree).
    ConfigExtract,
    /// A node index is out of range for the topology.
    NoSuchNode { node: usize, nodes: usize },
    /// The attached fault plan does not fit the topology.
    FaultPlan(String),
    /// Checkpointing or resuming failed: an I/O error in the checkpoint
    /// directory, a corrupt artifact recovery could not route around, or
    /// a fingerprint mismatch (resuming under a different environment).
    Checkpoint(String),
    /// The configured tuner name is not in the harmony registry.
    UnknownTuner(String),
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::MissingTier => {
                write!(
                    f,
                    "topology is missing a tier — every work line needs a proxy, app, and db node"
                )
            }
            SessionError::ConfigExtract => {
                write!(
                    f,
                    "cannot extract a uniform per-tier configuration — tier nodes disagree"
                )
            }
            SessionError::NoSuchNode { node, nodes } => {
                write!(f, "node {node} out of range (topology has {nodes} nodes)")
            }
            SessionError::FaultPlan(msg) => write!(f, "invalid fault plan: {msg}"),
            SessionError::Checkpoint(msg) => write!(f, "checkpoint failure: {msg}"),
            SessionError::UnknownTuner(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for SessionError {}

/// Environment of a tuning session.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    pub topology: Topology,
    pub workload: Workload,
    pub population: u32,
    pub plan: IntervalPlan,
    pub scale: CatalogScale,
    pub spec: NodeSpec,
    /// Base RNG seed; iteration `i` runs with `base_seed + i` unless
    /// `pin_seed` is set.
    pub base_seed: u64,
    /// Use the same seed every iteration (noise-free tuning, for tests).
    pub pin_seed: bool,
    /// Walk the TPC-W Markov navigation graph instead of i.i.d. mix
    /// sampling (same steady-state frequencies; see `tpcw::navigation`).
    pub markov_sessions: bool,
    /// Browser-population model: per-browser (the default, one entity
    /// per browser) or cohort (weighted tokens on a think-time slot
    /// wheel; see `tpcw::cohort`). Changing this changes the session
    /// fingerprint, so checkpoints refuse cross-load-model resume.
    pub load_model: LoadModel,
    /// Per-node hardware overrides (failure injection); entry `i`
    /// replaces `spec` for node `i`.
    pub node_specs: Vec<Option<NodeSpec>>,
    /// Deterministic fault schedule applied across iterations: iteration
    /// `i` covers simulated time `[i*plan.total(), (i+1)*plan.total())`
    /// of the plan. `None` (the default) leaves every run byte-identical
    /// to a fault-free session.
    pub fault_plan: Option<FaultPlan>,
    /// Seed for fault-related randomness (measurement-noise spikes,
    /// retry jitter), independent of `base_seed`.
    pub fault_seed: u64,
    /// Tuning algorithm, by harmony registry name (`harmony::tuner_names`
    /// lists them). Every server the session builds — one per tier, per
    /// work line, or over the full space — runs this algorithm.
    pub tuner: String,
    /// Crash-safe persistence: journal every iteration and snapshot
    /// periodically into a directory, optionally resuming from it.
    /// `None` (the default) writes nothing.
    pub checkpoint: Option<CheckpointPolicy>,
    /// Evaluation engine: memoized measurements and speculative parallel
    /// candidate evaluation, shared (via `Arc`) across clones of this
    /// config. The default is fully transparent — no cache, one thread —
    /// so sessions behave exactly as if the engine did not exist.
    pub eval: Arc<EvalEngine>,
    /// Worker width for measurement replications
    /// ([`SessionConfig::measure_default`],
    /// [`SessionConfig::measure_until_precise`]): `1` (the default)
    /// evaluates replications sequentially on the calling thread, `0`
    /// uses one worker per available core, anything else is an explicit
    /// width. Replications are independent simulations merged in
    /// replication order, so results are bit-identical at any width.
    pub replication_threads: usize,
}

impl SessionConfig {
    pub fn new(topology: Topology, workload: Workload, population: u32) -> Self {
        SessionConfig {
            topology,
            workload,
            population,
            plan: IntervalPlan::fast(),
            scale: CatalogScale::hpdc04(),
            spec: NodeSpec::hpdc04(),
            base_seed: 0x5EED,
            pin_seed: false,
            markov_sessions: false,
            load_model: LoadModel::default(),
            node_specs: Vec::new(),
            fault_plan: None,
            fault_seed: 0xFA17,
            tuner: "simplex".to_string(),
            checkpoint: None,
            eval: Arc::new(EvalEngine::new(EvalSettings::default())),
            replication_threads: 1,
        }
    }

    /// Builder: set the measurement plan.
    pub fn plan(mut self, plan: IntervalPlan) -> Self {
        self.plan = plan;
        self
    }

    /// Builder: set the base RNG seed.
    pub fn base_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Builder: pin the seed (every iteration re-uses `base_seed`).
    pub fn pin_seed(mut self, on: bool) -> Self {
        self.pin_seed = on;
        self
    }

    /// Builder: walk the Markov navigation graph instead of i.i.d. mixes.
    pub fn markov(mut self, on: bool) -> Self {
        self.markov_sessions = on;
        self
    }

    /// Builder: select the browser-population model (see
    /// [`cluster::model::LoadModel`]).
    pub fn load_model(mut self, model: LoadModel) -> Self {
        self.load_model = model;
        self
    }

    /// Builder: set the catalogue scale.
    pub fn scale(mut self, scale: CatalogScale) -> Self {
        self.scale = scale;
        self
    }

    /// Builder: set the baseline hardware spec for every node.
    pub fn spec(mut self, spec: NodeSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Builder: override the hardware spec of one node (failure
    /// injection, heterogeneous clusters).
    pub fn node_spec(mut self, node: usize, spec: NodeSpec) -> Self {
        if self.node_specs.len() <= node {
            self.node_specs
                .resize(self.topology.len().max(node + 1), None);
        }
        self.node_specs[node] = Some(spec);
        self
    }

    /// Builder: replace the topology.
    pub fn topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// Builder: replace the workload.
    pub fn workload(mut self, workload: Workload) -> Self {
        self.workload = workload;
        self
    }

    /// Builder: replace the browser population.
    pub fn population(mut self, population: u32) -> Self {
        self.population = population;
        self
    }

    /// Builder: attach a deterministic fault schedule.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Builder: set the fault/jitter seed.
    pub fn fault_seed(mut self, seed: u64) -> Self {
        self.fault_seed = seed;
        self
    }

    /// Builder: select the tuning algorithm by registry name (see
    /// `harmony::tuner_names()`). Unknown names surface as
    /// [`SessionError::UnknownTuner`] when the session starts.
    pub fn tuner(mut self, name: impl Into<String>) -> Self {
        self.tuner = name.into();
        self
    }

    /// Builder: checkpoint (and optionally resume) the session.
    pub fn checkpoint(mut self, policy: CheckpointPolicy) -> Self {
        self.checkpoint = Some(policy);
        self
    }

    /// Builder: replace the evaluation engine (memoization cache +
    /// speculative parallel candidate evaluation). Clones made after
    /// this call share the new engine.
    pub fn eval_settings(mut self, settings: EvalSettings) -> Self {
        self.eval = Arc::new(EvalEngine::new(settings));
        self
    }

    /// Builder: set the measurement-replication worker width (see
    /// [`SessionConfig::replication_threads`]; `0` = one per core).
    pub fn replication_threads(mut self, threads: usize) -> Self {
        self.replication_threads = threads;
        self
    }

    /// Degrade node `node` to `cpu_scale` of nominal CPU speed.
    pub fn degrade_cpu(&mut self, node: usize, cpu_scale: f64) -> Result<(), SessionError> {
        if node >= self.topology.len() {
            return Err(SessionError::NoSuchNode {
                node,
                nodes: self.topology.len(),
            });
        }
        if self.node_specs.len() <= node {
            self.node_specs.resize(self.topology.len(), None);
        }
        let mut spec = self.node_specs[node].unwrap_or(self.spec);
        spec.cpu_scale = cpu_scale;
        self.node_specs[node] = Some(spec);
        Ok(())
    }

    /// Check the attached fault plan (if any) against the topology.
    pub fn validate_faults(&self) -> Result<(), SessionError> {
        if let Some(plan) = &self.fault_plan {
            plan.validate(self.topology.len())
                .map_err(|e| SessionError::FaultPlan(e.to_string()))?;
        }
        Ok(())
    }

    /// Fault activity projected onto iteration `i`'s simulated window,
    /// `None` when no plan is attached.
    pub fn fault_window(&self, iteration: u32) -> Option<WindowFaults> {
        let plan = self.fault_plan.as_ref()?;
        let injector = FaultInjector::new(plan, self.fault_seed);
        let (start, end) = FaultClock::window_of(self.plan.total(), iteration);
        Some(injector.window(start, end, self.topology.len()))
    }

    /// Multiply measured WIPS by the iteration's noise-spike factor (a
    /// deterministic draw from the fault seed). No-op without an active
    /// spike, so fault-free runs are untouched.
    pub(crate) fn apply_fault_noise(&self, iteration: u32, out: &mut IterationOutcome) {
        let Some(wf) = self.fault_window(iteration) else {
            return;
        };
        if wf.noise <= 1.0 {
            return;
        }
        let Some(plan) = self.fault_plan.as_ref() else {
            return;
        };
        let (start, _) = FaultClock::window_of(self.plan.total(), iteration);
        let factor = FaultInjector::new(plan, self.fault_seed).wips_noise(start, wf.noise);
        out.metrics.wips *= factor;
        for lw in &mut out.line_wips {
            *lw *= factor;
        }
    }

    /// Typed measurement of one iteration's WIPS: the mean is the
    /// measured (possibly noise-spiked) throughput; the confidence
    /// half-width comes from the Poisson completion model, so noise-aware
    /// tuners can weight windows by their statistical trust.
    pub(crate) fn measurement_from(&self, wips: f64, completed: u64) -> Measurement {
        Measurement::point(wips)
            .with_ci(poisson_ci_half(completed, self.plan.measure.as_secs_f64()))
    }

    fn seed_for(&self, iteration: u32) -> u64 {
        if self.pin_seed {
            self.base_seed
        } else {
            self.base_seed.wrapping_add(iteration as u64)
        }
    }

    /// Seed for replication `rep` of a measurement experiment
    /// ([`SessionConfig::measure_default`] /
    /// [`SessionConfig::measure_until_precise`]). Offset from the
    /// tuning-iteration domain by a large odd constant so replication
    /// samples never alias `seed_for(i)` — reusing `0..reps` as
    /// iteration indices made "independent" replications identical to
    /// the first tuning measurements (and would collide in the
    /// evaluation cache). `pin_seed` still wins: a pinned session runs
    /// *every* measurement (iterations and replications alike) on
    /// `base_seed`, so pinned baselines stay bit-equal to pinned
    /// iterations; the disjoint domain protects unpinned sessions,
    /// where the aliasing was a real bug.
    fn replication_seed_for(&self, rep: u32) -> u64 {
        const REPLICATION_DOMAIN: u64 = 0x9E37_79B9_7F4A_7C15;
        if self.pin_seed {
            return self.base_seed;
        }
        (self.base_seed ^ REPLICATION_DOMAIN).wrapping_add(rep as u64)
    }

    /// Build the scenario for one iteration.
    pub fn scenario(&self, config: ClusterConfig, iteration: u32) -> ClusterScenario {
        let faults = self
            .fault_window(iteration)
            .and_then(|wf| (!wf.is_trivial()).then(|| wf.timeline()));
        ClusterScenario {
            spec: self.spec,
            topology: self.topology.clone(),
            config,
            workload: self.workload,
            scale: self.scale,
            browsers: tpcw::browser::BrowserConfig::hpdc04(self.population),
            plan: self.plan,
            seed: self.seed_for(iteration),
            lines: None,
            markov_sessions: self.markov_sessions,
            load_balancing: cluster::model::LoadBalancing::default(),
            node_specs: self.node_specs.clone(),
            faults,
            load_model: self.load_model,
        }
    }

    /// Evaluate one configuration (one iteration cycle).
    pub fn evaluate(&self, config: ClusterConfig, iteration: u32) -> IterationOutcome {
        self.evaluate_observed(config, iteration, None)
    }

    /// Like [`SessionConfig::evaluate`], but publishes engine and
    /// per-tier resource metrics when a registry is attached. Routed
    /// through the evaluation engine; the fault noise spike is applied
    /// *after* the cache lookup so cached entries stay raw and
    /// noise-deterministic (see [`crate::eval`]).
    pub fn evaluate_observed(
        &self,
        config: ClusterConfig,
        iteration: u32,
        registry: Option<&Registry>,
    ) -> IterationOutcome {
        let scenario = self.scenario(config, iteration);
        let mut out = self.eval.run(&scenario, registry);
        self.apply_fault_noise(iteration, &mut out);
        out
    }

    /// Evaluate one replication of a measurement experiment. Identical to
    /// [`SessionConfig::evaluate`] except the seed comes from the
    /// replication domain ([`SessionConfig::replication_seed_for`]), so
    /// measurement replications are independent of tuning iterations.
    fn evaluate_replication(&self, config: ClusterConfig, rep: u32) -> IterationOutcome {
        let mut scenario = self.scenario(config, rep);
        scenario.seed = self.replication_seed_for(rep);
        let mut out = self.eval.run(&scenario, None);
        self.apply_fault_noise(rep, &mut out);
        out
    }

    /// Evaluate replications `start .. start + count` of `config`,
    /// returned in replication order. With `replication_threads == 1`
    /// (the default) every replication runs sequentially on the calling
    /// thread; otherwise the batch fans out over the shared worker pool
    /// ([`crate::par::shared_pool`]) and the index-keyed merge keeps the
    /// result a pure function of `(self, config, start, count)` — any
    /// width produces bit-identical outcomes.
    fn replications(
        &self,
        config: &ClusterConfig,
        start: u32,
        count: u32,
    ) -> Vec<IterationOutcome> {
        if self.replication_threads == 1 || count < 2 {
            return (start..start + count)
                .map(|i| self.evaluate_replication(config.clone(), i))
                .collect();
        }
        let me = self.clone();
        let config = config.clone();
        let reps: Vec<u32> = (start..start + count).collect();
        crate::par::shared_pool().run_batch(reps, self.replication_threads, move |&rep| {
            me.evaluate_replication(config.clone(), rep)
        })
    }

    /// Measure the default configuration over `reps` independent seeds:
    /// the Table 4 "None (No Tuning)" row. Replications run on the
    /// shared worker pool when [`SessionConfig::replication_threads`]
    /// asks for it and are folded in replication order, so the returned
    /// statistics are bit-identical at any width.
    pub fn measure_default(&self, reps: u32) -> (f64, f64) {
        let mut stats = simkit::stats::Welford::new();
        for out in self.replications(&ClusterConfig::defaults(&self.topology), 0, reps) {
            stats.record(out.metrics.wips);
        }
        (stats.mean(), stats.std_dev())
    }

    /// Measure a configuration with sequential sampling: add replications
    /// until the 95% confidence half-width falls below
    /// `target_rel × mean`, up to `max_reps`. Returns the interval.
    ///
    /// With [`SessionConfig::replication_threads`] ≠ 1 the replications
    /// are evaluated in waves of the worker width; the stopping rule
    /// still scans samples one by one in replication order, so the
    /// returned interval is bit-identical to the sequential one — a
    /// wave can only *overshoot* the stopping point (wasted speculative
    /// replications, never a different answer).
    pub fn measure_until_precise(
        &self,
        config: &ClusterConfig,
        target_rel: f64,
        max_reps: u32,
    ) -> simkit::ci::ConfidenceInterval {
        let max_reps = max_reps.max(2);
        let wave = if self.replication_threads == 1 {
            1
        } else {
            crate::par::resolved_threads(self.replication_threads) as u32
        };
        let mut samples = Vec::new();
        let mut next = 0u32;
        while next < max_reps {
            let count = wave.min(max_reps - next);
            let outs = self.replications(config, next, count);
            next += count;
            for out in outs {
                samples.push(out.metrics.wips);
                if samples.len() >= 2 {
                    let ci = simkit::ci::replication_ci(&samples);
                    if ci.relative_precision() <= target_rel {
                        return ci;
                    }
                }
            }
        }
        simkit::ci::replication_ci(&samples)
    }
}

/// One tuning iteration's record in a session trace.
#[derive(Debug, Clone, PartialEq)]
pub struct IterationRecord {
    pub iteration: u32,
    /// Overall cluster WIPS measured this iteration.
    pub wips: f64,
    /// Per-work-line WIPS (single entry when unpartitioned).
    pub line_wips: Vec<f64>,
    /// Workload active this iteration (changes in schedule sessions).
    pub workload: Workload,
    /// Requests refused at admission.
    pub failed: u64,
}

/// Result of a tuning run.
#[derive(Debug, Clone)]
pub struct TuningRun {
    pub method: TuningMethod,
    pub records: Vec<IterationRecord>,
    /// Best configuration evaluated, with its WIPS.
    pub best_config: ClusterConfig,
    pub best_wips: f64,
    /// Iteration at which the best configuration was first evaluated.
    pub convergence_iteration: u32,
}

impl TuningRun {
    /// WIPS series (figure y-axis).
    pub fn wips_series(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.wips).collect()
    }

    /// Mean and standard deviation over `[start, end)` iterations — the
    /// paper's "second 100 iterations" statistics.
    pub fn window_stats(&self, start: usize, end: usize) -> (f64, f64) {
        let mut w = simkit::stats::Welford::new();
        for r in self.records.iter().take(end).skip(start) {
            w.record(r.wips);
        }
        (w.mean(), w.std_dev())
    }

    /// First iteration whose WIPS reaches `frac` of the best seen in the
    /// whole run — a noise-robust "iterations to converge" (the arg-max
    /// iteration keeps moving by measurement noise long after the tuner
    /// has effectively converged).
    pub fn first_within(&self, frac: f64) -> u32 {
        let target = self.best_wips * frac;
        self.records
            .iter()
            .find(|r| r.wips >= target)
            .map(|r| r.iteration)
            .unwrap_or(self.convergence_iteration)
    }

    /// Fraction of iterations in `[start, end)` beating `reference` WIPS.
    pub fn fraction_above(&self, start: usize, end: usize, reference: f64) -> f64 {
        let window: Vec<_> = self.records.iter().take(end).skip(start).collect();
        if window.is_empty() {
            return 0.0;
        }
        window.iter().filter(|r| r.wips > reference).count() as f64 / window.len() as f64
    }
}

/// Optional per-iteration observation hooks for a tuning session: a
/// [`TraceSink`] receiving one structured `iteration` record per tuning
/// iteration, and/or a [`Registry`] collecting engine/resource metrics
/// from every simulation run. [`SessionObserver::none`] makes the whole
/// layer free.
pub struct SessionObserver<'a> {
    sink: Option<&'a mut dyn TraceSink>,
    registry: Option<&'a Registry>,
}

impl<'a> SessionObserver<'a> {
    /// No observation: observed tuning behaves exactly like plain tuning.
    pub fn none() -> SessionObserver<'static> {
        SessionObserver {
            sink: None,
            registry: None,
        }
    }

    pub fn new(
        sink: Option<&'a mut dyn TraceSink>,
        registry: Option<&'a Registry>,
    ) -> SessionObserver<'a> {
        SessionObserver { sink, registry }
    }

    /// Trace-only observation.
    pub fn with_sink(sink: &'a mut dyn TraceSink) -> SessionObserver<'a> {
        SessionObserver {
            sink: Some(sink),
            registry: None,
        }
    }

    /// The attached metrics registry, if any.
    pub fn registry(&self) -> Option<&'a Registry> {
        self.registry
    }

    /// Flush the attached sink (end of session).
    pub fn flush(&mut self) {
        if let Some(sink) = self.sink.as_deref_mut() {
            sink.flush();
        }
    }

    /// Emit one `iteration` trace record. Field order is part of the
    /// trace schema (see DESIGN.md "Observability") — extend at the end,
    /// before `wall_ms`, and update the golden-file test.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn record_iteration(
        &mut self,
        cfg: &SessionConfig,
        method_label: &str,
        iteration: u32,
        config: &ClusterConfig,
        out: &IterationOutcome,
        best_wips: f64,
        best_iteration: u32,
        diagnostics: &[(&'static str, f64)],
        wall_ms: f64,
    ) {
        let Some(sink) = self.sink.as_deref_mut() else {
            return;
        };
        let ci_half = poisson_ci_half(out.metrics.completed, cfg.plan.measure.as_secs_f64());
        let mut rec = TraceRecord::new("iteration")
            .field("method", method_label)
            .field("iteration", iteration)
            .field("workload", cfg.workload.name())
            .field("seed", cfg.seed_for(iteration))
            .field("config", config_summary(config))
            .field("wips", out.metrics.wips)
            .field("ci_half", ci_half)
            .field("completed", out.metrics.completed)
            .field("failed", out.total_failed)
            .field("line_wips", out.line_wips.clone())
            .field("best_wips", best_wips)
            .field("best_iteration", best_iteration)
            .field("events", out.events);
        for (k, v) in diagnostics {
            rec.push(format!("tuner_{k}"), *v);
        }
        rec.push("wall_ms", wall_ms);
        sink.emit(&rec);
    }

    /// Emit one `tuner` trace record: which algorithm consumed this
    /// iteration's measurement, its natural batch width, and the typed
    /// measurement it was fed. Field order is part of the trace schema
    /// (tests/golden/tuner_schema.txt).
    pub(crate) fn record_tuner(
        &mut self,
        iteration: u32,
        name: &str,
        batch: usize,
        m: &Measurement,
    ) {
        let Some(sink) = self.sink.as_deref_mut() else {
            return;
        };
        let rec = TraceRecord::new("tuner")
            .field("name", name)
            .field("iteration", iteration)
            .field("batch", batch as u64)
            .field("mean", m.mean)
            .field("ci_half", m.ci_half_width)
            .field("replications", m.replications as u64);
        sink.emit(&rec);
    }

    /// Emit one `reconfig` trace record for an accepted node move.
    pub(crate) fn record_reconfig(
        &mut self,
        iteration: u32,
        node: usize,
        from_tier: &str,
        to_tier: &str,
        immediate: bool,
        cost_value: f64,
    ) {
        let Some(sink) = self.sink.as_deref_mut() else {
            return;
        };
        let rec = TraceRecord::new("reconfig")
            .field("iteration", iteration)
            .field("node", node)
            .field("from_tier", from_tier)
            .field("to_tier", to_tier)
            .field("immediate", immediate)
            .field("cost_value", cost_value);
        sink.emit(&rec);
    }

    /// Emit one `fault` trace record for an injected fault event. Field
    /// order is part of the trace schema (tests/golden/fault_schema.txt).
    pub(crate) fn record_fault(
        &mut self,
        iteration: u32,
        at_s: f64,
        node: i64,
        fault: &str,
        factor: f64,
    ) {
        let Some(sink) = self.sink.as_deref_mut() else {
            return;
        };
        let rec = TraceRecord::new("fault")
            .field("iteration", iteration)
            .field("at_s", at_s)
            .field("node", node)
            .field("fault", fault)
            .field("factor", factor);
        sink.emit(&rec);
    }

    /// Emit one `recovery` trace record for a resilience action (retry,
    /// re-measurement, breaker trip, failure-driven reconfiguration).
    /// Field order is part of the trace schema
    /// (tests/golden/recovery_schema.txt).
    pub(crate) fn record_recovery(
        &mut self,
        iteration: u32,
        action: &str,
        attempt: u32,
        delay_s: f64,
        config: &str,
        wips: f64,
    ) {
        let Some(sink) = self.sink.as_deref_mut() else {
            return;
        };
        let rec = TraceRecord::new("recovery")
            .field("iteration", iteration)
            .field("action", action)
            .field("attempt", attempt)
            .field("delay_s", delay_s)
            .field("config", config)
            .field("wips", wips);
        sink.emit(&rec);
    }

    /// Emit one `suspicion` trace record per node per iteration in
    /// detector mode: the window's peak φ and the membership state at the
    /// window's end. Field order is part of the trace schema
    /// (tests/golden/suspicion_schema.txt).
    pub(crate) fn record_suspicion(&mut self, iteration: u32, node: usize, phi: f64, state: &str) {
        let Some(sink) = self.sink.as_deref_mut() else {
            return;
        };
        let rec = TraceRecord::new("suspicion")
            .field("iteration", iteration)
            .field("node", node as i64)
            .field("phi", phi)
            .field("state", state);
        sink.emit(&rec);
    }

    /// Emit one `membership` trace record per detected transition
    /// (Up/Suspect/Down), stamped with the simulated assessment time.
    /// Field order is part of the trace schema
    /// (tests/golden/membership_schema.txt).
    pub(crate) fn record_membership(
        &mut self,
        iteration: u32,
        at_s: f64,
        node: usize,
        from: &str,
        to: &str,
        phi: f64,
    ) {
        let Some(sink) = self.sink.as_deref_mut() else {
            return;
        };
        let rec = TraceRecord::new("membership")
            .field("iteration", iteration)
            .field("at_s", at_s)
            .field("node", node as i64)
            .field("from", from)
            .field("to", to)
            .field("phi", phi);
        sink.emit(&rec);
    }

    /// Emit one `degraded` trace record when the fallback policy
    /// substitutes the best-known sample for a failed or rejected
    /// evaluation. Field order is part of the trace schema
    /// (tests/golden/degraded_schema.txt).
    pub(crate) fn record_degraded(
        &mut self,
        iteration: u32,
        reason: &str,
        config: &str,
        wips: f64,
    ) {
        let Some(sink) = self.sink.as_deref_mut() else {
            return;
        };
        let rec = TraceRecord::new("degraded")
            .field("iteration", iteration)
            .field("reason", reason)
            .field("config", config)
            .field("wips", wips);
        sink.emit(&rec);
    }

    /// Emit one `resume` trace record when a checkpointed session picks
    /// up where an interrupted run stopped. Field order is part of the
    /// trace schema (tests/golden/resume_schema.txt).
    pub(crate) fn record_resume(
        &mut self,
        method: &str,
        iteration: u32,
        snapshot_iteration: i64,
        replayed: u32,
        best_wips: f64,
    ) {
        let Some(sink) = self.sink.as_deref_mut() else {
            return;
        };
        let rec = TraceRecord::new("resume")
            .field("method", method)
            .field("iteration", iteration)
            .field("snapshot_iteration", snapshot_iteration)
            .field("replayed", replayed)
            .field("best_wips", best_wips);
        sink.emit(&rec);
    }

    /// Emit one `eval` summary record at the end of a session whose
    /// evaluation engine is active (cache and/or speculation). Field
    /// order is part of the trace schema
    /// (tests/golden/eval_schema.txt). This is the only record that
    /// varies with the engine configuration; determinism tests strip
    /// it, like `wall_ms`.
    pub(crate) fn record_eval(
        &mut self,
        method: &str,
        iterations: u32,
        threads: usize,
        counters: &EvalCounters,
    ) {
        let Some(sink) = self.sink.as_deref_mut() else {
            return;
        };
        let rec = TraceRecord::new("eval")
            .field("method", method)
            .field("iterations", iterations)
            .field("threads", threads as u64)
            .field("hits", counters.hits)
            .field("misses", counters.misses)
            .field("speculated", counters.speculated)
            .field("speculation_dropped", counters.speculation_dropped)
            .field("hit_rate", counters.hit_rate());
        sink.emit(&rec);
    }
}

/// 95% half-width under the Poisson completion model: WIPS is a count
/// over the measurement window, so its sampling std-dev is
/// ~sqrt(count)/window.
pub(crate) fn poisson_ci_half(completed: u64, measure_secs: f64) -> f64 {
    if measure_secs > 0.0 {
        1.96 * (completed as f64).sqrt() / measure_secs
    } else {
        0.0
    }
}

/// Run a prepared scenario, through the metrics-publishing runner when a
/// registry is attached.
pub fn run_scenario(
    scenario: &cluster::model::ClusterScenario,
    registry: Option<&Registry>,
) -> IterationOutcome {
    match registry {
        Some(r) => run_iteration_observed(scenario, r),
        None => run_iteration(scenario),
    }
}

fn node_values(n: &cluster::config::NodeParams) -> Vec<i64> {
    if let Some(p) = n.as_proxy() {
        p.to_values().to_vec()
    } else if let Some(w) = n.as_app() {
        w.to_values().to_vec()
    } else if let Some(d) = n.as_db() {
        d.to_values().to_vec()
    } else {
        Vec::new()
    }
}

/// Compact one-line rendering of a full cluster configuration:
/// `proxy[v,v,..]|app[v,..]|db[v,..]`, one segment per node.
pub(crate) fn config_summary(config: &ClusterConfig) -> String {
    config
        .nodes()
        .iter()
        .map(|n| {
            let vals: Vec<String> = node_values(n).iter().map(|v| v.to_string()).collect();
            format!("{}[{}]", n.role().name(), vals.join(","))
        })
        .collect::<Vec<_>>()
        .join("|")
}

/// Internal: track best-seen config across a run.
struct BestConfig {
    config: ClusterConfig,
    wips: f64,
    iteration: u32,
}

impl BestConfig {
    fn new(initial: ClusterConfig) -> Self {
        BestConfig {
            config: initial,
            wips: f64::NEG_INFINITY,
            iteration: 0,
        }
    }

    fn consider(&mut self, config: &ClusterConfig, wips: f64, iteration: u32) {
        if wips > self.wips {
            self.config = config.clone();
            self.wips = wips;
            self.iteration = iteration;
        }
    }

    fn save_state(&self) -> State {
        State::map()
            .with("config", checkpoint::config_state(&self.config))
            .with("wips", State::F64(self.wips))
            .with("iteration", State::U64(self.iteration as u64))
    }

    fn restore_state(&mut self, state: &State) -> Result<(), PersistError> {
        self.config = checkpoint::config_from_state(state.require("config")?)?;
        self.wips = state.field_f64("wips")?;
        self.iteration = state.field_u64("iteration")? as u32;
        Ok(())
    }
}

/// Work-line node sets for a topology (one `Vec<NodeId>` per line).
fn work_lines(topology: &Topology) -> Result<Vec<Vec<NodeId>>, SessionError> {
    let nodes: Vec<(usize, u8)> = topology
        .roles()
        .iter()
        .enumerate()
        .map(|(i, r)| {
            (
                i,
                match r {
                    Role::Proxy => 0u8,
                    Role::App => 1,
                    Role::Db => 2,
                },
            )
        })
        .collect();
    let lines = build_work_lines(&nodes).map_err(|_| SessionError::MissingTier)?;
    Ok(lines.into_iter().map(|l| l.nodes).collect())
}

/// The tuner side of one session iteration, one variant per §III layout.
///
/// Every tuning method is the same closed loop — propose a cluster
/// configuration, measure it, feed the result back — differing only in
/// how proposals are assembled and which throughput each server sees.
/// `TuneEngine` owns exactly that difference, so a single
/// [`drive_tuning`] loop (and a single checkpoint/replay path) serves
/// all four methods.
enum TuneEngine {
    /// No tuning: always propose the default configuration.
    Baseline,
    /// Default method: one server over every parameter of every node.
    Single(HarmonyServer),
    /// Parameter duplication: one server per tier, values replicated
    /// across the tier's nodes, all fed the overall WIPS.
    Tiers(Box<[HarmonyServer; 3]>),
    /// Parameter partitioning (and the hybrid's fine phase): one server
    /// per work line, each fed its own line's throughput, proposals
    /// overlaid on `base`.
    Lines {
        servers: Vec<HarmonyServer>,
        lines: Vec<Vec<NodeId>>,
        base: ClusterConfig,
    },
}

impl TuneEngine {
    /// Build one tuner of the session's configured algorithm over
    /// `space`, optionally seeded from a starting configuration.
    fn build_tuner(
        cfg: &SessionConfig,
        space: harmony::space::ParamSpace,
        start: Option<&harmony::space::Configuration>,
        index: u64,
    ) -> Result<Box<dyn harmony::tuner::Tuner + Send>, SessionError> {
        harmony::registry::make_tuner_seeded(&cfg.tuner, space, start, tuner_seed(cfg, index))
            .map_err(|e| SessionError::UnknownTuner(e.to_string()))
    }

    fn tier_servers(cfg: &SessionConfig) -> Result<[HarmonyServer; 3], SessionError> {
        // Session servers run the ask/tell v2 batch protocol: same
        // proposal sequence, but a batch-native tuner's queued round is
        // certain future work, visible to speculative prefetch.
        Ok([
            HarmonyServer::new(
                "proxy-tier",
                Self::build_tuner(cfg, binding::role_space(Role::Proxy), None, 0)?,
            )
            .batch_protocol(true),
            HarmonyServer::new(
                "web-tier",
                Self::build_tuner(cfg, binding::role_space(Role::App), None, 1)?,
            )
            .batch_protocol(true),
            HarmonyServer::new(
                "db-tier",
                Self::build_tuner(cfg, binding::role_space(Role::Db), None, 2)?,
            )
            .batch_protocol(true),
        ])
    }

    fn line_servers(
        cfg: &SessionConfig,
        count: usize,
        seed: Option<&harmony::space::Configuration>,
    ) -> Result<Vec<HarmonyServer>, SessionError> {
        (0..count)
            .map(|i| {
                let tuner = Self::build_tuner(cfg, binding::tier_space(), seed, i as u64)?;
                Ok(HarmonyServer::new(format!("line-{i}"), tuner).batch_protocol(true))
            })
            .collect()
    }

    /// The engine a method starts with (the hybrid starts coarse, on
    /// tiers, and switches via [`TuneEngine::fine_phase`]).
    fn for_method(cfg: &SessionConfig, method: TuningMethod) -> Result<TuneEngine, SessionError> {
        Ok(match method {
            TuningMethod::None => TuneEngine::Baseline,
            TuningMethod::Default => TuneEngine::Single(
                HarmonyServer::new(
                    "all-nodes",
                    Self::build_tuner(cfg, binding::full_space(&cfg.topology), None, 0)?,
                )
                .batch_protocol(true),
            ),
            TuningMethod::Duplication | TuningMethod::Hybrid => {
                TuneEngine::Tiers(Box::new(Self::tier_servers(cfg)?))
            }
            TuningMethod::Partitioning => TuneEngine::Lines {
                servers: Self::line_servers(cfg, work_lines(&cfg.topology)?.len(), None)?,
                lines: work_lines(&cfg.topology)?,
                base: ClusterConfig::defaults(&cfg.topology),
            },
        })
    }

    /// The hybrid's fine phase: per-line tuning seeded from (and overlaid
    /// on) the coarse phase's best configuration.
    fn fine_phase(
        cfg: &SessionConfig,
        seed_config: &ClusterConfig,
    ) -> Result<TuneEngine, SessionError> {
        let seed_tier = binding::tier_config_from(seed_config, &cfg.topology)
            .ok_or(SessionError::ConfigExtract)?;
        let lines = work_lines(&cfg.topology)?;
        Ok(TuneEngine::Lines {
            servers: Self::line_servers(cfg, lines.len(), Some(&seed_tier))?,
            lines,
            base: seed_config.clone(),
        })
    }

    /// Assemble this iteration's proposed cluster configuration.
    fn propose(&mut self, cfg: &SessionConfig) -> ClusterConfig {
        match self {
            TuneEngine::Baseline => ClusterConfig::defaults(&cfg.topology),
            TuneEngine::Single(server) => {
                binding::config_from_full(&cfg.topology, &server.next_config())
            }
            TuneEngine::Tiers(servers) => {
                let pc = servers[0].next_config();
                let wc = servers[1].next_config();
                let dc = servers[2].next_config();
                binding::config_from_roles(&cfg.topology, &pc, &wc, &dc)
            }
            TuneEngine::Lines {
                servers,
                lines,
                base,
            } => {
                let mut config = base.clone();
                for (server, line) in servers.iter_mut().zip(lines.iter()) {
                    let proposal = server.next_config();
                    binding::apply_line_config(&mut config, &cfg.topology, line, &proposal);
                }
                config
            }
        }
    }

    /// Work-line partition for the scenario, when this engine uses one.
    fn lines(&self) -> Option<Vec<Vec<NodeId>>> {
        match self {
            TuneEngine::Lines { lines, .. } => Some(lines.clone()),
            _ => None,
        }
    }

    /// Cluster configurations this engine *may* propose over its next
    /// `horizon` iterations: element `k` of the outer vector lists
    /// candidates for the proposal `k` iterations ahead (0 = the very
    /// next one). Advisory input to speculative evaluation (see
    /// [`crate::eval`]); multi-server engines cross their servers'
    /// per-offset candidate lists, capped so a speculation step never
    /// explodes combinatorially.
    fn speculate(&self, cfg: &SessionConfig, horizon: usize) -> Vec<Vec<ClusterConfig>> {
        /// Most joint candidates per offset: reflect follow-ups give 3
        /// candidates per server, so two servers already reach 9 — cap
        /// the cross product at a budget that keeps the certain
        /// single-candidate chains (init, shrink) fully covered.
        const SPECULATION_CAP: usize = 8;

        if horizon == 0 {
            return Vec::new();
        }
        match self {
            TuneEngine::Baseline => {
                vec![vec![ClusterConfig::defaults(&cfg.topology)]; horizon]
            }
            TuneEngine::Single(server) => server
                .speculate()
                .into_iter()
                .take(horizon)
                .map(|cands| {
                    cands
                        .iter()
                        .take(SPECULATION_CAP)
                        .map(|c| binding::config_from_full(&cfg.topology, c))
                        .collect()
                })
                .collect(),
            TuneEngine::Tiers(servers) => Self::joint_speculation(
                &servers.iter().map(|s| s.speculate()).collect::<Vec<_>>(),
                horizon,
                SPECULATION_CAP,
                |combo| binding::config_from_roles(&cfg.topology, &combo[0], &combo[1], &combo[2]),
            ),
            TuneEngine::Lines {
                servers,
                lines,
                base,
            } => Self::joint_speculation(
                &servers.iter().map(|s| s.speculate()).collect::<Vec<_>>(),
                horizon,
                SPECULATION_CAP,
                |combo| {
                    let mut config = base.clone();
                    for (line, proposal) in lines.iter().zip(combo) {
                        binding::apply_line_config(&mut config, &cfg.topology, line, proposal);
                    }
                    config
                },
            ),
        }
    }

    /// Cross the per-server speculation lists offset by offset: a joint
    /// candidate exists at offset `k` only while *every* server still
    /// sees that far ahead, and each combination picks one candidate per
    /// server (bounded by `cap` combinations per offset).
    fn joint_speculation(
        ahead: &[Vec<Vec<Configuration>>],
        horizon: usize,
        cap: usize,
        assemble: impl Fn(&[Configuration]) -> ClusterConfig,
    ) -> Vec<Vec<ClusterConfig>> {
        let mut out = Vec::new();
        for k in 0..horizon {
            let Some(parts) = ahead
                .iter()
                .map(|a| a.get(k).filter(|p| !p.is_empty()))
                .collect::<Option<Vec<_>>>()
            else {
                break;
            };
            let mut combos: Vec<Vec<Configuration>> = vec![Vec::new()];
            for part in parts {
                let mut next = Vec::with_capacity(cap);
                'fill: for combo in &combos {
                    for cand in part.iter() {
                        if next.len() >= cap {
                            break 'fill;
                        }
                        let mut c = combo.clone();
                        c.push(cand.clone());
                        next.push(c);
                    }
                }
                combos = next;
            }
            if combos.is_empty() {
                break;
            }
            out.push(combos.iter().map(|combo| assemble(combo)).collect());
        }
        out
    }

    /// Feed the measured throughput back to the server(s) as a typed
    /// measurement. Line servers see their own line's share: the mean is
    /// the line's WIPS and the confidence half-width is scaled by the
    /// line's share of the cluster total, so per-line trust tracks
    /// per-line volume.
    fn report(&mut self, m: &Measurement, line_wips: &[f64]) {
        match self {
            TuneEngine::Baseline => {}
            TuneEngine::Single(server) => server.report_measurement(*m),
            TuneEngine::Tiers(servers) => {
                for s in servers.iter_mut() {
                    s.report_measurement(*m);
                }
            }
            TuneEngine::Lines { servers, .. } => {
                for (s, lw) in servers.iter_mut().zip(line_wips) {
                    let share = if m.mean > 0.0 { lw / m.mean } else { 0.0 };
                    let line_m = Measurement::point(*lw)
                        .with_ci(m.ci_half_width * share)
                        .with_replications(m.replications);
                    s.report_measurement(line_m);
                }
            }
        }
    }

    /// Registry name of the algorithm driving this engine (`none` for
    /// the untuned baseline).
    fn tuner_name(&self) -> &'static str {
        match self {
            TuneEngine::Baseline => "none",
            TuneEngine::Single(server) => server.algorithm(),
            TuneEngine::Tiers(servers) => servers[0].algorithm(),
            TuneEngine::Lines { servers, .. } => {
                servers.first().map(|s| s.algorithm()).unwrap_or("none")
            }
        }
    }

    /// The first server's natural batch width (1 for point tuners).
    fn batch_width(&self) -> usize {
        match self {
            TuneEngine::Baseline => 1,
            TuneEngine::Single(server) => server.batch_size(),
            TuneEngine::Tiers(servers) => servers[0].batch_size(),
            TuneEngine::Lines { servers, .. } => {
                servers.first().map(|s| s.batch_size()).unwrap_or(1)
            }
        }
    }

    /// Number of tuning servers this engine drives per iteration.
    fn server_count(&self) -> usize {
        match self {
            TuneEngine::Baseline => 0,
            TuneEngine::Single(_) => 1,
            TuneEngine::Tiers(_) => 3,
            TuneEngine::Lines { servers, .. } => servers.len(),
        }
    }

    /// Tuner diagnostics for the trace (first server's, as before).
    fn diagnostics(&self) -> Vec<(&'static str, f64)> {
        match self {
            TuneEngine::Baseline => Vec::new(),
            TuneEngine::Single(server) => server.diagnostics(),
            TuneEngine::Tiers(servers) => servers[0].diagnostics(),
            TuneEngine::Lines { servers, .. } => {
                servers.first().map(|s| s.diagnostics()).unwrap_or_default()
            }
        }
    }

    fn save_state(&self) -> State {
        match self {
            TuneEngine::Baseline => State::map().with("kind", State::Str("baseline".into())),
            TuneEngine::Single(server) => {
                State::map().with("kind", State::Str("single".into())).with(
                    "servers",
                    State::List(vec![Checkpointable::save_state(server)]),
                )
            }
            TuneEngine::Tiers(servers) => {
                State::map().with("kind", State::Str("tiers".into())).with(
                    "servers",
                    State::List(servers.iter().map(Checkpointable::save_state).collect()),
                )
            }
            TuneEngine::Lines {
                servers,
                lines,
                base,
            } => State::map()
                .with("kind", State::Str("lines".into()))
                .with(
                    "servers",
                    State::List(servers.iter().map(Checkpointable::save_state).collect()),
                )
                .with(
                    "lines",
                    State::List(
                        lines
                            .iter()
                            .map(|l| State::List(l.iter().map(|&n| State::U64(n as u64)).collect()))
                            .collect(),
                    ),
                )
                .with("base", checkpoint::config_state(base)),
        }
    }

    /// Rebuild an engine skeleton for the serialized `kind` (spaces come
    /// from the session environment, not the snapshot) and restore the
    /// server states into it.
    fn from_state(cfg: &SessionConfig, state: &State) -> Result<TuneEngine, PersistError> {
        let restore_into = |server: &mut HarmonyServer, saved: &State| {
            Checkpointable::restore_state(server, saved)
        };
        let skeleton_err = |e: SessionError| PersistError::Schema(e.to_string());
        match state.field_str("kind")? {
            "baseline" => Ok(TuneEngine::Baseline),
            "single" => {
                let saved = state.field_list("servers")?;
                let first = saved.first().ok_or_else(|| {
                    PersistError::Schema("single engine has no server state".into())
                })?;
                let mut server = HarmonyServer::new(
                    "all-nodes",
                    Self::build_tuner(cfg, binding::full_space(&cfg.topology), None, 0)
                        .map_err(skeleton_err)?,
                )
                .batch_protocol(true);
                restore_into(&mut server, first)?;
                Ok(TuneEngine::Single(server))
            }
            "tiers" => {
                let saved = state.field_list("servers")?;
                if saved.len() != 3 {
                    return Err(PersistError::Schema(format!(
                        "tiers engine expects 3 server states, found {}",
                        saved.len()
                    )));
                }
                let mut servers = Box::new(Self::tier_servers(cfg).map_err(skeleton_err)?);
                for (server, st) in servers.iter_mut().zip(saved) {
                    restore_into(server, st)?;
                }
                Ok(TuneEngine::Tiers(servers))
            }
            "lines" => {
                let lines = state
                    .field_list("lines")?
                    .iter()
                    .map(|l| {
                        l.as_list()
                            .ok_or_else(|| PersistError::Schema("line is not a list".into()))?
                            .iter()
                            .map(|n| {
                                n.as_u64().map(|v| v as NodeId).ok_or_else(|| {
                                    PersistError::Schema("line node is not a u64".into())
                                })
                            })
                            .collect::<Result<Vec<NodeId>, _>>()
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                let base = checkpoint::config_from_state(state.require("base")?)?;
                let saved = state.field_list("servers")?;
                if saved.len() != lines.len() {
                    return Err(PersistError::Schema(format!(
                        "lines engine expects {} server states, found {}",
                        lines.len(),
                        saved.len()
                    )));
                }
                let mut servers =
                    Self::line_servers(cfg, lines.len(), None).map_err(skeleton_err)?;
                for (server, st) in servers.iter_mut().zip(saved) {
                    restore_into(server, st)?;
                }
                Ok(TuneEngine::Lines {
                    servers,
                    lines,
                    base,
                })
            }
            other => Err(PersistError::Schema(format!(
                "unknown engine kind '{other}'"
            ))),
        }
    }
}

pub(crate) fn ckerr(e: PersistError) -> SessionError {
    SessionError::Checkpoint(e.to_string())
}

/// Deterministic per-server RNG seed for the stochastic tuners, derived
/// from the session's base seed and the server's position. The domain
/// constant keeps tuner streams disjoint from iteration seeds
/// (`seed_for`) and replication seeds.
pub(crate) fn tuner_seed(cfg: &SessionConfig, index: u64) -> u64 {
    const TUNER_SEED_DOMAIN: u64 = 0x7E57_A15E_ED00_0001;
    (cfg.base_seed ^ TUNER_SEED_DOMAIN).wrapping_add(index)
}

/// Full tuner state of a plain tuning session, snapshot-ready.
fn tune_snapshot(engine: &TuneEngine, best: &BestConfig, records: &[IterationRecord]) -> State {
    State::map()
        .with("kind", State::Str("tune".into()))
        .with("engine", engine.save_state())
        .with("best", best.save_state())
        .with("records", checkpoint::records_state(records))
}

/// Trace label for iteration `i` (the hybrid's coarse phase labels its
/// records `duplication`, so the phase switch is visible in the trace).
fn method_label(method: TuningMethod, i: u32, switch_at: u32) -> &'static str {
    if method == TuningMethod::Hybrid && i < switch_at {
        TuningMethod::Duplication.label()
    } else {
        method.label()
    }
}

/// The one tuning loop behind every method: propose → simulate →
/// observe, with optional crash-safe checkpointing and resume.
///
/// `switch_at` is only meaningful for [`TuningMethod::Hybrid`] (the
/// iteration at which the coarse tier engine is replaced by per-line
/// fine tuning seeded from the best configuration so far); other methods
/// ignore it.
fn drive_tuning(
    cfg: &SessionConfig,
    method: TuningMethod,
    iterations: u32,
    switch_at: u32,
    observer: &mut SessionObserver,
) -> Result<TuningRun, SessionError> {
    cfg.validate_faults()?;
    let switch_at = if method == TuningMethod::Hybrid {
        switch_at.min(iterations)
    } else {
        iterations
    };
    let mut engine = TuneEngine::for_method(cfg, method)?;
    let mut records: Vec<IterationRecord> = Vec::with_capacity(iterations as usize);
    let mut best = BestConfig::new(ClusterConfig::defaults(&cfg.topology));
    let mut start = 0u32;

    let mut ckpt = match cfg.checkpoint.as_ref() {
        None => None,
        Some(policy) => {
            let fp = checkpoint::session_fingerprint(cfg, method.label(), iterations, switch_at);
            let (ck, resumed) = Checkpointer::open(policy, fp)?;
            if let Some(resumed) = resumed {
                let mut snapshot_iteration: i64 = -1;
                if let Some((snap_iter, state)) = resumed.snapshot.as_ref() {
                    snapshot_iteration = *snap_iter as i64;
                    start = *snap_iter as u32;
                    if start > switch_at {
                        // The snapshot engine is already the fine phase.
                    } else if method == TuningMethod::Hybrid && start == switch_at {
                        // Snapshot taken exactly at the switch boundary:
                        // the saved engine is still coarse; the live loop
                        // below rebuilds the fine engine at `i == switch_at`.
                    }
                    engine = TuneEngine::from_state(cfg, state.require("engine").map_err(ckerr)?)
                        .map_err(ckerr)?;
                    best.restore_state(state.require("best").map_err(ckerr)?)
                        .map_err(ckerr)?;
                    records =
                        checkpoint::records_from_state(state.require("records").map_err(ckerr)?)
                            .map_err(ckerr)?;
                    // Warm the evaluation cache from the snapshot (older
                    // snapshots — or cache-off sessions — simply lack
                    // the field).
                    if let Some(cached) = state.get("eval_cache") {
                        cfg.eval.restore_cache(cached).map_err(ckerr)?;
                    }
                }
                // Replay the journal past the snapshot: re-derive each
                // proposal from the deterministic tuner and feed it the
                // journaled measurement — no re-simulation, no trace
                // output (those records already exist in the stream).
                let mut replayed = 0u32;
                for delta in &resumed.deltas {
                    let i = delta.field_u64("iteration").map_err(ckerr)? as u32;
                    if i != start {
                        return Err(SessionError::Checkpoint(format!(
                            "journal gap: expected iteration {start}, found {i}"
                        )));
                    }
                    if method == TuningMethod::Hybrid && i == switch_at {
                        engine = TuneEngine::fine_phase(cfg, &best.config)?;
                    }
                    let config = engine.propose(cfg);
                    let wips = delta.field_f64("wips").map_err(ckerr)?;
                    let line_wips = delta
                        .require("line_wips")
                        .and_then(State::to_f64_vec)
                        .map_err(ckerr)?;
                    let failed = delta.field_u64("failed").map_err(ckerr)?;
                    // Rebuild the typed measurement from the journaled
                    // completion count so CI-weighting tuners (TUNA)
                    // replay bit-identically.
                    let completed = delta.get("completed").and_then(State::as_u64).unwrap_or(0);
                    engine.report(&cfg.measurement_from(wips, completed), &line_wips);
                    best.consider(&config, wips, i);
                    records.push(IterationRecord {
                        iteration: i,
                        wips,
                        line_wips,
                        workload: cfg.workload,
                        failed,
                    });
                    start += 1;
                    replayed += 1;
                }
                observer.record_resume(
                    method.label(),
                    start,
                    snapshot_iteration,
                    replayed,
                    best.wips.max(0.0),
                );
            }
            Some(ck)
        }
    };

    let eval_before = cfg.eval.counters();
    for i in start..iterations {
        if method == TuningMethod::Hybrid && i == switch_at {
            engine = TuneEngine::fine_phase(cfg, &best.config)?;
        }
        // Speculative parallel evaluation: ask the tuner what it may
        // propose over the next few iterations and warm the cache on
        // worker threads. The horizon never crosses the hybrid's phase
        // switch (the fine engine proposes from a different space).
        let spec_horizon = cfg.eval.speculation_horizon();
        if spec_horizon > 0 {
            let phase_end = if i < switch_at { switch_at } else { iterations };
            let horizon = spec_horizon.min((phase_end - i) as usize);
            let mut scenarios = Vec::new();
            for (off, candidates) in engine.speculate(cfg, horizon).into_iter().enumerate() {
                for candidate in candidates {
                    let mut s = cfg.scenario(candidate, i + off as u32);
                    s.lines = engine.lines();
                    scenarios.push(s);
                }
            }
            cfg.eval.prefetch(&scenarios);
        }
        let t0 = Instant::now();
        let config = engine.propose(cfg);
        let mut scenario = cfg.scenario(config.clone(), i);
        scenario.lines = engine.lines();
        let mut out = cfg.eval.run(&scenario, observer.registry());
        cfg.apply_fault_noise(i, &mut out);
        let wips = out.metrics.wips;
        let measurement = cfg.measurement_from(wips, out.metrics.completed);
        engine.report(&measurement, &out.line_wips);
        best.consider(&config, wips, i);
        observer.record_iteration(
            cfg,
            method_label(method, i, switch_at),
            i,
            &config,
            &out,
            best.wips,
            best.iteration,
            &engine.diagnostics(),
            t0.elapsed().as_secs_f64() * 1e3,
        );
        if method != TuningMethod::None {
            observer.record_tuner(i, engine.tuner_name(), engine.batch_width(), &measurement);
            if let Some(registry) = observer.registry() {
                registry
                    .counter("tuner.proposals")
                    .add(engine.server_count() as u64);
                registry.counter("tuner.batches").add(1);
            }
        }
        records.push(IterationRecord {
            iteration: i,
            wips,
            line_wips: out.line_wips.clone(),
            workload: cfg.workload,
            failed: out.total_failed,
        });
        if let Some(ck) = ckpt.as_mut() {
            ck.append(
                State::map()
                    .with("iteration", State::U64(i as u64))
                    .with("wips", State::F64(wips))
                    .with("line_wips", State::f64_list(&out.line_wips))
                    .with("failed", State::U64(out.total_failed))
                    .with("completed", State::U64(out.metrics.completed)),
            )?;
            ck.maybe_snapshot(i + 1, iterations, || {
                let mut snap = tune_snapshot(&engine, &best, &records);
                if cfg.eval.cache_enabled() {
                    snap.set("eval_cache", cfg.eval.save_cache_state());
                }
                snap
            })?;
        }
    }
    if cfg.eval.enabled() {
        let activity = cfg.eval.counters().since(&eval_before);
        if let Some(registry) = observer.registry() {
            registry.counter("eval.cache_hits").add(activity.hits);
            registry.counter("eval.cache_misses").add(activity.misses);
            registry.counter("eval.speculated").add(activity.speculated);
            registry
                .counter("eval.speculation_dropped")
                .add(activity.speculation_dropped);
        }
        observer.record_eval(
            method.label(),
            iterations - start,
            cfg.eval.threads(),
            &activity,
        );
    }
    observer.flush();
    Ok(TuningRun {
        method,
        records,
        best_config: best.config,
        best_wips: best.wips,
        convergence_iteration: if method == TuningMethod::None {
            0
        } else {
            best.iteration
        },
    })
}

/// Tune with the paper's **default method**: one Harmony server over every
/// parameter of every node.
pub fn tune_default_method(
    cfg: &SessionConfig,
    iterations: u32,
) -> Result<TuningRun, SessionError> {
    tune_default_method_observed(cfg, iterations, &mut SessionObserver::none())
}

/// [`tune_default_method`] with per-iteration trace/metrics observation.
pub fn tune_default_method_observed(
    cfg: &SessionConfig,
    iterations: u32,
    observer: &mut SessionObserver,
) -> Result<TuningRun, SessionError> {
    drive_tuning(cfg, TuningMethod::Default, iterations, iterations, observer)
}

/// Tune with **parameter duplication**: one server per tier (7/7/9
/// dimensions), every tier's values replicated across its nodes, all three
/// servers fed the same overall WIPS.
pub fn tune_duplication(cfg: &SessionConfig, iterations: u32) -> Result<TuningRun, SessionError> {
    tune_duplication_observed(cfg, iterations, &mut SessionObserver::none())
}

/// [`tune_duplication`] with per-iteration trace/metrics observation.
/// Tuner diagnostics come from the proxy-tier server.
pub fn tune_duplication_observed(
    cfg: &SessionConfig,
    iterations: u32,
    observer: &mut SessionObserver,
) -> Result<TuningRun, SessionError> {
    drive_tuning(
        cfg,
        TuningMethod::Duplication,
        iterations,
        iterations,
        observer,
    )
}

/// Tune with **parameter partitioning**: the cluster is split into work
/// lines; each line gets its own server (23 dimensions) fed by *its own
/// line's* throughput, and requests never cross lines.
pub fn tune_partitioning(cfg: &SessionConfig, iterations: u32) -> Result<TuningRun, SessionError> {
    tune_partitioning_observed(cfg, iterations, &mut SessionObserver::none())
}

/// [`tune_partitioning`] with per-iteration trace/metrics observation.
/// Tuner diagnostics come from the first work line's server.
pub fn tune_partitioning_observed(
    cfg: &SessionConfig,
    iterations: u32,
    observer: &mut SessionObserver,
) -> Result<TuningRun, SessionError> {
    drive_tuning(
        cfg,
        TuningMethod::Partitioning,
        iterations,
        iterations,
        observer,
    )
}

/// The paper's future-work **hybrid**: duplication for the first
/// `switch_at` iterations, then per-line fine tuning seeded from the
/// duplication result.
pub fn tune_hybrid(
    cfg: &SessionConfig,
    iterations: u32,
    switch_at: u32,
) -> Result<TuningRun, SessionError> {
    tune_hybrid_observed(cfg, iterations, switch_at, &mut SessionObserver::none())
}

/// [`tune_hybrid`] with per-iteration trace/metrics observation. The
/// coarse phase emits records labelled `duplication`, the fine phase
/// `hybrid` — the phase switch is visible in the trace.
pub fn tune_hybrid_observed(
    cfg: &SessionConfig,
    iterations: u32,
    switch_at: u32,
    observer: &mut SessionObserver,
) -> Result<TuningRun, SessionError> {
    let run = drive_tuning(cfg, TuningMethod::Hybrid, iterations, switch_at, observer)?;
    Ok(TuningRun {
        method: TuningMethod::Hybrid,
        ..run
    })
}

/// Dispatch by method (None yields a flat run of the default config).
pub fn tune(
    cfg: &SessionConfig,
    method: TuningMethod,
    iterations: u32,
) -> Result<TuningRun, SessionError> {
    tune_observed(cfg, method, iterations, &mut SessionObserver::none())
}

/// [`tune`] with per-iteration trace/metrics observation.
pub fn tune_observed(
    cfg: &SessionConfig,
    method: TuningMethod,
    iterations: u32,
    observer: &mut SessionObserver,
) -> Result<TuningRun, SessionError> {
    let switch_at = match method {
        TuningMethod::Hybrid => iterations / 3,
        _ => iterations,
    };
    drive_tuning(cfg, method, iterations, switch_at, observer)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg(workload: Workload) -> SessionConfig {
        SessionConfig::new(Topology::single(), workload, 300).plan(IntervalPlan::tiny())
    }

    #[test]
    fn default_method_runs_and_records() {
        let cfg = quick_cfg(Workload::Shopping);
        let run = tune_default_method(&cfg, 8).expect("tuning");
        assert_eq!(run.records.len(), 8);
        assert!(run.best_wips > 0.0);
        assert!(run.convergence_iteration < 8);
        assert_eq!(run.method, TuningMethod::Default);
    }

    #[test]
    fn duplication_replicates_values() {
        let cfg = quick_cfg(Workload::Browsing).topology(Topology::tiers(2, 1, 1).unwrap());
        let run = tune_duplication(&cfg, 5).expect("tuning");
        let best = &run.best_config;
        assert_eq!(
            best.node(0).as_proxy().unwrap(),
            best.node(1).as_proxy().unwrap(),
            "duplication must keep tier nodes identical"
        );
    }

    #[test]
    fn partitioning_reports_per_line() {
        let cfg = quick_cfg(Workload::Shopping)
            .topology(Topology::tiers(2, 2, 2).unwrap())
            .population(400);
        let run = tune_partitioning(&cfg, 5).expect("tuning");
        assert_eq!(run.records[0].line_wips.len(), 2);
        assert!(run.best_wips > 0.0);
    }

    #[test]
    fn none_method_is_flat_default() {
        let cfg = quick_cfg(Workload::Ordering);
        let run = tune(&cfg, TuningMethod::None, 3).expect("tuning");
        assert_eq!(run.records.len(), 3);
        assert_eq!(run.best_config, ClusterConfig::defaults(&cfg.topology));
    }

    #[test]
    fn hybrid_switches_methods() {
        let cfg = quick_cfg(Workload::Shopping)
            .topology(Topology::tiers(2, 2, 2).unwrap())
            .population(400);
        let run = tune_hybrid(&cfg, 9, 4).expect("tuning");
        assert_eq!(run.records.len(), 9);
        assert_eq!(run.method, TuningMethod::Hybrid);
    }

    #[test]
    fn pinned_seed_is_deterministic() {
        let cfg = quick_cfg(Workload::Shopping).pin_seed(true);
        let a = tune_default_method(&cfg, 4).expect("tuning");
        let b = tune_default_method(&cfg, 4).expect("tuning");
        assert_eq!(a.wips_series(), b.wips_series());
    }

    #[test]
    fn sequential_sampling_tightens_the_interval() {
        let cfg = quick_cfg(Workload::Shopping);
        let default = ClusterConfig::defaults(&cfg.topology);
        let loose = cfg.measure_until_precise(&default, 0.5, 3);
        assert!(loose.samples >= 2);
        assert!(loose.mean > 0.0);
        // A tight target forces more replications (up to the cap).
        let tight = cfg.measure_until_precise(&default, 0.0001, 4);
        assert!(tight.samples >= loose.samples);
        assert!(tight.samples <= 4);
    }

    #[test]
    fn window_stats_and_fraction() {
        let cfg = quick_cfg(Workload::Shopping);
        let run = tune(&cfg, TuningMethod::None, 6).expect("tuning");
        let (mean, sd) = run.window_stats(0, 6);
        assert!(mean > 0.0);
        assert!(sd >= 0.0);
        assert_eq!(run.fraction_above(0, 6, 0.0), 1.0);
        assert_eq!(run.fraction_above(0, 6, f64::INFINITY), 0.0);
    }

    #[test]
    fn builder_matches_field_mutation() {
        let spec = NodeSpec {
            cpu_scale: 0.5,
            ..NodeSpec::hpdc04()
        };
        let built = SessionConfig::new(Topology::single(), Workload::Shopping, 300)
            .plan(IntervalPlan::tiny())
            .base_seed(99)
            .pin_seed(true)
            .markov(true)
            .node_spec(1, spec);
        let mut mutated = SessionConfig::new(Topology::single(), Workload::Shopping, 300);
        mutated.plan = IntervalPlan::tiny();
        mutated.base_seed = 99;
        mutated.pin_seed = true;
        mutated.markov_sessions = true;
        mutated.node_specs = vec![None, Some(spec), None];
        assert_eq!(built.base_seed, mutated.base_seed);
        assert_eq!(built.pin_seed, mutated.pin_seed);
        assert_eq!(built.markov_sessions, mutated.markov_sessions);
        assert_eq!(built.node_specs, mutated.node_specs);
        assert_eq!(built.seed_for(7), mutated.seed_for(7));
    }

    #[test]
    fn observed_tuning_matches_plain_and_traces_every_iteration() {
        let cfg = quick_cfg(Workload::Shopping).pin_seed(true);
        let plain = tune(&cfg, TuningMethod::Default, 5).expect("tuning");

        let mut sink = obs::MemorySink::new();
        let registry = Registry::new();
        let mut observer = SessionObserver::new(Some(&mut sink), Some(&registry));
        let observed =
            tune_observed(&cfg, TuningMethod::Default, 5, &mut observer).expect("tuning");

        // Observation must not perturb the search.
        assert_eq!(plain.wips_series(), observed.wips_series());
        assert_eq!(plain.best_wips, observed.best_wips);

        // One iteration record plus one tuner record per iteration,
        // with the schema fields in order.
        let all = sink.records();
        assert_eq!(all.len(), 10);
        let records: Vec<_> = all.iter().filter(|r| r.kind() == "iteration").collect();
        let tuner_records: Vec<_> = all.iter().filter(|r| r.kind() == "tuner").collect();
        assert_eq!(records.len(), 5);
        assert_eq!(tuner_records.len(), 5);
        for (i, r) in records.iter().enumerate() {
            let keys: Vec<&str> = r.fields().iter().map(|(k, _)| k.as_str()).collect();
            assert_eq!(
                &keys[..13],
                &[
                    "method",
                    "iteration",
                    "workload",
                    "seed",
                    "config",
                    "wips",
                    "ci_half",
                    "completed",
                    "failed",
                    "line_wips",
                    "best_wips",
                    "best_iteration",
                    "events",
                ]
            );
            assert_eq!(keys.last().copied(), Some("wall_ms"));
            assert_eq!(r.get("iteration").and_then(|v| v.as_f64()), Some(i as f64));
            assert!(r.get("wips").and_then(|v| v.as_f64()).unwrap() > 0.0);
            assert!(r.get("ci_half").and_then(|v| v.as_f64()).unwrap() > 0.0);
        }
        // best_wips in the last record equals the run's best.
        let last_best = records[4]
            .get("best_wips")
            .and_then(|v| v.as_f64())
            .unwrap();
        assert_eq!(last_best, observed.best_wips);

        // Tuner records interleave after each iteration and carry the
        // ask/tell v2 measurement fields in order.
        for (i, r) in tuner_records.iter().enumerate() {
            let keys: Vec<&str> = r.fields().iter().map(|(k, _)| k.as_str()).collect();
            assert_eq!(
                &keys[..],
                &[
                    "name",
                    "iteration",
                    "batch",
                    "mean",
                    "ci_half",
                    "replications"
                ]
            );
            assert_eq!(r.get("iteration").and_then(|v| v.as_f64()), Some(i as f64));
            assert!(matches!(r.get("name"), Some(obs::Value::Str(s)) if s == "simplex"));
            assert_eq!(r.get("batch").and_then(|v| v.as_f64()), Some(1.0));
            assert!(r.get("ci_half").and_then(|v| v.as_f64()).unwrap() > 0.0);
        }

        // The registry accumulated engine metrics across all runs.
        let snap = registry.snapshot();
        let events = snap
            .counters
            .iter()
            .find(|(n, _)| n == "sim.events")
            .map(|(_, v)| *v)
            .unwrap();
        assert!(events > 0);
        let counter = |name: &str| {
            snap.counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or(0)
        };
        assert_eq!(counter("tuner.proposals"), 5);
        assert_eq!(counter("tuner.batches"), 5);
    }

    #[test]
    fn replication_seeds_are_disjoint_from_iteration_seeds() {
        // Regression: measure_default/measure_until_precise used to run
        // replication r with seed_for(r), so "independent" replications
        // aliased the first tuning iterations of the same session.
        let cfg = quick_cfg(Workload::Shopping).base_seed(1234);
        let reps = 64u32;
        let iter_seeds: std::collections::BTreeSet<u64> =
            (0..reps).map(|i| cfg.seed_for(i)).collect();
        for r in 0..reps {
            assert!(
                !iter_seeds.contains(&cfg.replication_seed_for(r)),
                "replication {r} reuses a tuning-iteration seed"
            );
        }
        // Unpinned replications must also differ from each other.
        let rep_seeds: std::collections::BTreeSet<u64> =
            (0..reps).map(|r| cfg.replication_seed_for(r)).collect();
        assert_eq!(rep_seeds.len(), reps as usize);
        // Pinning still wins: a pinned session runs everything —
        // replications included — on base_seed, keeping pinned
        // baselines bit-equal to pinned iterations.
        let pinned = cfg.clone().pin_seed(true);
        for r in 0..reps {
            assert_eq!(pinned.replication_seed_for(r), pinned.base_seed);
        }
    }

    #[test]
    fn unpinned_measurements_estimate_noise() {
        let cfg = quick_cfg(Workload::Shopping);
        let (mean, sd) = cfg.measure_default(4);
        assert!(mean > 0.0);
        assert!(sd > 0.0, "replications collapsed onto one seed (sd = {sd})");
        // A pinned session collapses that variance by design.
        let (_, pinned_sd) = quick_cfg(Workload::Shopping)
            .pin_seed(true)
            .measure_default(4);
        assert_eq!(pinned_sd, 0.0);
    }

    #[test]
    fn cached_tuning_matches_sequential_bit_for_bit() {
        let plain = tune(&quick_cfg(Workload::Shopping), TuningMethod::Default, 6).expect("tuning");
        let cached =
            quick_cfg(Workload::Shopping).eval_settings(EvalSettings::default().cache(true));
        let run = tune(&cached, TuningMethod::Default, 6).expect("tuning");
        assert_eq!(plain.wips_series(), run.wips_series());
        assert_eq!(plain.best_wips.to_bits(), run.best_wips.to_bits());
        let c = cached.eval.counters();
        assert_eq!(c.hits + c.misses, 6);
    }

    #[test]
    fn speculative_parallel_tuning_matches_sequential_bit_for_bit() {
        let plain = tune(&quick_cfg(Workload::Shopping), TuningMethod::Default, 8).expect("tuning");
        let spec = quick_cfg(Workload::Shopping)
            .eval_settings(EvalSettings::default().cache(true).threads(0));
        let run = tune(&spec, TuningMethod::Default, 8).expect("tuning");
        assert_eq!(plain.wips_series(), run.wips_series());
        assert_eq!(plain.best_wips.to_bits(), run.best_wips.to_bits());
        let c = spec.eval.counters();
        assert!(c.speculated > 0, "speculation never ran");
        assert!(c.hits > 0, "speculation never paid off: {c:?}");
    }

    #[test]
    fn active_engine_emits_one_eval_record() {
        let cfg = quick_cfg(Workload::Shopping).eval_settings(EvalSettings::default().cache(true));
        let mut sink = obs::MemorySink::new();
        let mut observer = SessionObserver::with_sink(&mut sink);
        tune_observed(&cfg, TuningMethod::Default, 3, &mut observer).expect("tuning");
        let records = sink.records();
        assert_eq!(
            records.len(),
            7,
            "3 iteration + 3 tuner records + 1 eval summary"
        );
        let eval = records.last().unwrap();
        assert_eq!(eval.kind(), "eval");
        let keys: Vec<&str> = eval.fields().iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            keys,
            [
                "method",
                "iterations",
                "threads",
                "hits",
                "misses",
                "speculated",
                "speculation_dropped",
                "hit_rate"
            ]
        );
        assert_eq!(eval.get("iterations").and_then(|v| v.as_f64()), Some(3.0));
    }

    #[test]
    fn parallel_replications_match_sequential_bit_for_bit() {
        // The unit of parallelism is the full independent replication:
        // fanning a measurement sweep over the shared pool must change
        // wall-clock time only, never a bit of the folded statistics.
        let seq = quick_cfg(Workload::Shopping);
        let (mean_1, sd_1) = seq.measure_default(6);
        for width in [0usize, 2, 8] {
            let par = quick_cfg(Workload::Shopping).replication_threads(width);
            let (mean_w, sd_w) = par.measure_default(6);
            assert_eq!(mean_1.to_bits(), mean_w.to_bits(), "width {width}");
            assert_eq!(sd_1.to_bits(), sd_w.to_bits(), "width {width}");
        }
        let default = ClusterConfig::defaults(&seq.topology);
        let ci_1 = seq.measure_until_precise(&default, 0.05, 6);
        for width in [2usize, 8] {
            let par = quick_cfg(Workload::Shopping).replication_threads(width);
            let ci_w = par.measure_until_precise(&default, 0.05, 6);
            assert_eq!(ci_1.mean.to_bits(), ci_w.mean.to_bits(), "width {width}");
            assert_eq!(
                ci_1.half_width.to_bits(),
                ci_w.half_width.to_bits(),
                "width {width}"
            );
            assert_eq!(ci_1.samples, ci_w.samples, "width {width}");
        }
    }

    #[test]
    fn trace_records_survive_jsonl_roundtrip_shape() {
        let cfg = quick_cfg(Workload::Browsing).pin_seed(true);
        let mut sink = obs::MemorySink::new();
        let mut observer = SessionObserver::with_sink(&mut sink);
        tune_observed(&cfg, TuningMethod::None, 2, &mut observer).expect("tuning");
        for r in sink.records() {
            let line = r.to_json();
            assert!(line.starts_with("{\"kind\":\"iteration\""));
            assert!(line.ends_with('}'));
            // None method carries no tuner diagnostics.
            assert!(r.fields().iter().all(|(k, _)| !k.starts_with("tuner_")));
        }
    }
}
