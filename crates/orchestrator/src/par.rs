//! Parallel execution of independent simulation runs.
//!
//! Tuning itself is sequential (each iteration depends on the last
//! observation), but the experiment harness runs many *independent*
//! simulations: replicas over seeds, the 3×3 matrix of Figure 4, the four
//! Table 4 methods — and the evaluation engine speculates on future
//! simplex candidates the same way (see `crate::eval`). Those fan out
//! across cores — no `unsafe`, no leaked scoped threads, no external
//! crates, results returned in input order.
//!
//! Two execution fronts share the same claim/merge discipline (an
//! `AtomicUsize` hands each item index to exactly one worker; results
//! merge into an index-keyed slot vector, so output order never depends
//! on scheduling):
//!
//! * [`parallel_map`] — scoped threads for *borrowed* inputs and
//!   closures. Threads live only for the call; write-once [`OnceLock`]
//!   slots hold results without a lock per item.
//! * [`WorkerPool::run_batch`] / [`shared_pool`] — one persistent,
//!   process-wide pool for *owned* batches: speculative candidate
//!   evaluation, measurement replications, and whole scenario sweeps
//!   all schedule onto the same workers instead of each call spawning
//!   its own. The caller participates as one of the `width` runners, so
//!   a batch submitted from inside a pool job can never deadlock — the
//!   submitting thread drains the batch itself if every pool worker is
//!   busy.
//!
//! Determinism: for both fronts the result vector is a pure function of
//! `(items, f)` — thread count and scheduling affect only wall-clock
//! time. The byte-identity suite in `tests/eval.rs` holds seeded
//! sessions to that contract at 1, 2, and 8 threads.

use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, OnceLock, PoisonError};

/// Map `f` over `items` in parallel, preserving order. Uses up to
/// `max_threads` worker threads (0 = number of available cores).
///
/// An explicit `max_threads == 1` never spawns: the mapping runs on the
/// calling thread. Memory is bounded by the output vector itself —
/// workers write each result straight into its write-once slot (no
/// channel, so a fast producer can never buffer the whole result set
/// twice; no per-item mutex, so storing a result is a single atomic
/// release).
///
/// A panic in `f` propagates to the caller when the scope joins.
pub fn parallel_map<I, O, F>(items: &[I], max_threads: usize, f: F) -> Vec<O>
where
    I: Sync,
    O: Send + Sync,
    F: Fn(&I) -> O + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let threads = effective_threads(max_threads, items.len());
    if threads <= 1 {
        return items.iter().map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<OnceLock<O>> = (0..items.len()).map(|_| OnceLock::new()).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let next = &next;
            let slots = &slots;
            let f = &f;
            scope.spawn(move || loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= items.len() {
                    break;
                }
                let out = f(&items[idx]);
                // `idx` is claimed by exactly one worker, so this set
                // always wins; the Err arm (already set) is unreachable
                // and its value is simply dropped.
                let _ = slots[idx].set(out);
            });
        }
        // `std::thread::scope` joins every worker here and re-raises the
        // first panic, so a half-filled result can never be observed.
    });
    slots
        .into_iter()
        .map(OnceLock::into_inner)
        .map(|o| {
            #[allow(clippy::expect_used)]
            o.expect("every index processed: scope joined all workers")
        })
        .collect()
}

/// Worker-thread count for `work` independent tasks under a
/// `max_threads` request: an explicit request is honoured exactly (never
/// silently inflated), `0` means one thread per available core, and the
/// result is clamped to `[1, work]` — more workers than tasks would only
/// spawn idle threads. `available_parallelism` failure (exotic
/// platforms, restricted cgroups) degrades to sequential, never panics.
pub fn effective_threads(max_threads: usize, work: usize) -> usize {
    let cap = if max_threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        max_threads
    };
    cap.min(work).max(1)
}

/// Resolve a thread-count *request* to a concrete width: `0` (auto)
/// becomes the shared pool's size (one worker per core), anything else
/// is taken literally. Used by callers that need the width before they
/// know the work size (e.g. the wave length of a sequential-sampling
/// measurement).
pub fn resolved_threads(request: usize) -> usize {
    if request == 0 {
        shared_pool().size()
    } else {
        request
    }
}

/// Convenience: run `f` for each seed in `0..reps` in parallel.
pub fn parallel_seeds<O, F>(reps: u64, f: F) -> Vec<O>
where
    O: Send + Sync,
    F: Fn(u64) -> O + Sync,
{
    let seeds: Vec<u64> = (0..reps).collect();
    parallel_map(&seeds, 0, |s| f(*s))
}

/// A queued unit of pool work. Runner jobs catch panics from user
/// closures internally, so a pool worker thread never unwinds.
type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolShared {
    queue: Mutex<VecDeque<Job>>,
    work_ready: Condvar,
    shutdown: AtomicBool,
}

fn lock_queue(shared: &PoolShared) -> std::sync::MutexGuard<'_, VecDeque<Job>> {
    shared.queue.lock().unwrap_or_else(PoisonError::into_inner)
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut q = lock_queue(shared);
            loop {
                if let Some(job) = q.pop_front() {
                    break Some(job);
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    break None;
                }
                q = shared
                    .work_ready
                    .wait(q)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        match job {
            Some(job) => job(),
            None => return,
        }
    }
}

/// One result message per *claimed* index: the output, or the payload of
/// a panic caught inside the runner.
type Slot<O> = Result<O, Box<dyn std::any::Any + Send + 'static>>;

struct BatchCtx<T, O, F> {
    items: Vec<T>,
    f: F,
    next: AtomicUsize,
    tx: mpsc::Sender<(usize, Slot<O>)>,
}

impl<T, O, F> BatchCtx<T, O, F>
where
    F: Fn(&T) -> O,
{
    /// Claim-and-run loop shared by the caller and every pool runner.
    /// Every claimed index sends exactly one message (result or panic
    /// payload), so the collector always receives `items.len()`
    /// messages in total.
    fn drain(&self) {
        loop {
            let idx = self.next.fetch_add(1, Ordering::Relaxed);
            if idx >= self.items.len() {
                break;
            }
            let out = std::panic::catch_unwind(AssertUnwindSafe(|| (self.f)(&self.items[idx])));
            if self.tx.send((idx, out)).is_err() {
                break;
            }
        }
    }
}

/// A persistent worker pool: long-lived threads pulling boxed jobs off
/// one shared queue. The process-wide instance ([`shared_pool`]) is what
/// the evaluation engine, the replication measurers, and the figure
/// drivers schedule onto — one pool, however many call sites.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
    size: usize,
}

impl WorkerPool {
    /// Spawn a pool with `size` worker threads (clamped to at least 1).
    pub fn new(size: usize) -> WorkerPool {
        let size = size.max(1);
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            work_ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..size)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        WorkerPool {
            shared,
            workers,
            size,
        }
    }

    /// Number of worker threads.
    pub fn size(&self) -> usize {
        self.size
    }

    fn submit(&self, job: Job) {
        lock_queue(&self.shared).push_back(job);
        self.shared.work_ready.notify_one();
    }

    /// Run `f` over every item of an owned batch with up to `width`
    /// concurrent runners (0 = the pool size), returning results in
    /// input order.
    ///
    /// Deterministic merge rule: results land in an index-keyed slot
    /// vector, so the output is a pure function of `(items, f)` — width,
    /// pool size, and scheduling change only wall-clock time. An
    /// explicit `width == 1` runs inline on the calling thread and
    /// queues nothing. For larger widths the caller becomes one of the
    /// `width` runners and `width - 1` runner jobs are queued; runners
    /// claim item indices from a shared cursor, so a batch makes
    /// progress (and terminates) even when every pool worker is busy —
    /// including when the batch is submitted from *inside* a pool job.
    ///
    /// A panic in `f` is caught in the runner (pool workers never die),
    /// re-raised on the calling thread after the whole batch settles;
    /// when several items panic, the lowest index wins (deterministic).
    pub fn run_batch<T, O, F>(&self, items: Vec<T>, width: usize, f: F) -> Vec<O>
    where
        T: Send + Sync + 'static,
        O: Send + 'static,
        F: Fn(&T) -> O + Send + Sync + 'static,
    {
        if items.is_empty() {
            return Vec::new();
        }
        let width = if width == 0 { self.size } else { width }.min(items.len());
        if width <= 1 {
            let mut out = Vec::with_capacity(items.len());
            for item in &items {
                out.push(f(item));
            }
            return out;
        }
        let n = items.len();
        let (tx, rx) = mpsc::channel();
        let ctx = Arc::new(BatchCtx {
            items,
            f,
            next: AtomicUsize::new(0),
            tx,
        });
        for _ in 0..width - 1 {
            let ctx = Arc::clone(&ctx);
            self.submit(Box::new(move || ctx.drain()));
        }
        ctx.drain();
        let mut slots: Vec<Option<O>> = (0..n).map(|_| None).collect();
        let mut panic_payload: Option<(usize, Box<dyn std::any::Any + Send>)> = None;
        for _ in 0..n {
            // Every index is claimed by exactly one runner and every
            // claimed index sends exactly one message; senders outlive
            // the loop via `ctx`, so `recv` cannot fail before `n`
            // messages arrive.
            let Ok((idx, res)) = rx.recv() else { break };
            match res {
                Ok(out) => slots[idx] = Some(out),
                Err(payload) => {
                    if panic_payload.as_ref().is_none_or(|(i, _)| idx < *i) {
                        panic_payload = Some((idx, payload));
                    }
                }
            }
        }
        if let Some((_, payload)) = panic_payload {
            std::panic::resume_unwind(payload);
        }
        slots
            .into_iter()
            .map(|o| {
                #[allow(clippy::expect_used)]
                o.expect("every index claimed exactly once and collected")
            })
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.work_ready.notify_all();
        for handle in self.workers.drain(..) {
            // A worker that panicked outside a caught job is a bug, but
            // tearing down the pool must not double-panic.
            let _ = handle.join();
        }
    }
}

/// The process-wide worker pool, sized to the available cores on first
/// use. Every parallel subsystem — speculative candidate evaluation,
/// measurement replications, scenario sweeps — shares these workers
/// instead of spawning its own.
pub fn shared_pool() -> &'static WorkerPool {
    static POOL: OnceLock<WorkerPool> = OnceLock::new();
    POOL.get_or_init(|| {
        WorkerPool::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, 8, |&x| x * x);
        let expected: Vec<u64> = items.iter().map(|x| x * x).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn empty_input() {
        let out: Vec<u64> = parallel_map(&Vec::<u64>::new(), 4, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_thread_path() {
        let items = vec![1, 2, 3];
        let out = parallel_map(&items, 1, |&x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn single_thread_request_never_spawns() {
        // Regression: an explicit 1-thread request must run on the
        // calling thread, not on one spawned worker.
        let caller = std::thread::current().id();
        let items = vec![1, 2, 3];
        let ids = parallel_map(&items, 1, |_| std::thread::current().id());
        assert!(ids.iter().all(|id| *id == caller));
    }

    #[test]
    fn explicit_thread_request_is_honoured() {
        // Regression: `effective_threads` must never inflate an explicit
        // request (e.g. to the core count) — only clamp it to the work.
        assert_eq!(effective_threads(3, 100), 3);
        assert_eq!(effective_threads(3, 2), 2);
        assert_eq!(effective_threads(1, 100), 1);
        assert_eq!(effective_threads(64, 1), 1);
        // 0 = auto: at least one thread, never more than the work.
        assert!(effective_threads(0, 100) >= 1);
        assert_eq!(effective_threads(0, 1), 1);
    }

    #[test]
    fn resolved_threads_maps_zero_to_pool_size() {
        assert_eq!(resolved_threads(0), shared_pool().size());
        assert_eq!(resolved_threads(3), 3);
        assert_eq!(resolved_threads(1), 1);
    }

    #[test]
    fn more_threads_than_items() {
        let items = vec![5];
        let out = parallel_map(&items, 64, |&x| x * 2);
        assert_eq!(out, vec![10]);
    }

    #[test]
    fn parallel_seeds_runs_all() {
        let out = parallel_seeds(17, |s| s * 3);
        assert_eq!(out.len(), 17);
        assert_eq!(out[16], 48);
    }

    #[test]
    fn panic_in_worker_propagates() {
        let items: Vec<u64> = (0..32).collect();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            parallel_map(&items, 4, |&x| {
                if x == 13 {
                    panic!("boom at {x}");
                }
                x
            })
        }));
        assert!(caught.is_err(), "panic must not be swallowed");
    }

    #[test]
    fn heavy_work_is_actually_parallel_safe() {
        // Hash chains: result must be independent of scheduling.
        let items: Vec<u64> = (0..64).collect();
        let f = |&x: &u64| {
            let mut h = x;
            for _ in 0..10_000 {
                h = h.wrapping_mul(0x9E3779B97F4A7C15).rotate_left(17) ^ x;
            }
            h
        };
        let seq: Vec<u64> = items.iter().map(f).collect();
        let par = parallel_map(&items, 0, f);
        assert_eq!(seq, par);
    }

    #[test]
    fn write_once_slots_fill_under_contention() {
        // Regression for the OnceLock slot scheme: many tiny items and
        // more threads than cores maximize claim churn; every slot must
        // still be written exactly once and read back in order.
        let items: Vec<u64> = (0..500).collect();
        let out = parallel_map(&items, 16, |&x| x + 7);
        let expected: Vec<u64> = items.iter().map(|x| x + 7).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn pool_batch_preserves_order() {
        let pool = WorkerPool::new(4);
        let items: Vec<u64> = (0..200).collect();
        let out = pool.run_batch(items.clone(), 4, |&x| x * 3);
        let expected: Vec<u64> = items.iter().map(|x| x * 3).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn pool_batch_empty_and_inline_paths() {
        let pool = WorkerPool::new(2);
        let out: Vec<u64> = pool.run_batch(Vec::new(), 4, |&x: &u64| x);
        assert!(out.is_empty());
        // Explicit width 1 runs inline on the caller.
        let caller = std::thread::current().id();
        let ids = pool.run_batch(vec![1, 2, 3], 1, move |_| std::thread::current().id());
        assert!(ids.iter().all(|id| *id == caller));
    }

    #[test]
    fn pool_batch_width_zero_uses_pool_size() {
        let pool = WorkerPool::new(3);
        let items: Vec<u64> = (0..50).collect();
        let out = pool.run_batch(items, 0, |&x| x + 1);
        assert_eq!(out.len(), 50);
        assert_eq!(out[49], 50);
    }

    #[test]
    fn pool_batch_result_is_width_independent() {
        let pool = WorkerPool::new(4);
        let f = |&x: &u64| {
            let mut h = x;
            for _ in 0..5_000 {
                h = h.wrapping_mul(0x9E3779B97F4A7C15).rotate_left(17) ^ x;
            }
            h
        };
        let items: Vec<u64> = (0..64).collect();
        let w1 = pool.run_batch(items.clone(), 1, f);
        let w2 = pool.run_batch(items.clone(), 2, f);
        let w8 = pool.run_batch(items.clone(), 8, f);
        assert_eq!(w1, w2);
        assert_eq!(w1, w8);
    }

    #[test]
    fn pool_batch_panic_propagates_and_pool_survives() {
        let pool = WorkerPool::new(2);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run_batch((0..16u64).collect(), 4, |&x| {
                if x % 5 == 3 {
                    panic!("boom at {x}");
                }
                x
            })
        }));
        assert!(caught.is_err(), "panic must not be swallowed");
        // The pool's workers caught the panic internally and are still
        // serving jobs.
        let out = pool.run_batch(vec![1u64, 2, 3], 2, |&x| x * 2);
        assert_eq!(out, vec![2, 4, 6]);
    }

    #[test]
    fn nested_batch_from_inside_a_pool_job_completes() {
        // A batch submitted from inside a pool job must not deadlock
        // even when the pool has a single worker: the submitting job
        // participates as a runner and drains the batch itself.
        let pool = Arc::new(WorkerPool::new(1));
        let inner_pool = Arc::clone(&pool);
        let outer = pool.run_batch(vec![10u64, 20], 2, move |&x| {
            let inner = inner_pool.run_batch(vec![1u64, 2, 3], 2, |&y| y * 2);
            x + inner.iter().sum::<u64>()
        });
        assert_eq!(outer, vec![22, 32]);
    }

    #[test]
    fn shared_pool_is_process_wide() {
        let a = shared_pool() as *const WorkerPool;
        let b = shared_pool() as *const WorkerPool;
        assert_eq!(a, b);
        assert!(shared_pool().size() >= 1);
        let out = shared_pool().run_batch(vec![4u64, 5], 2, |&x| x * x);
        assert_eq!(out, vec![16, 25]);
    }
}
