//! Parallel execution of independent simulation runs.
//!
//! Tuning itself is sequential (each iteration depends on the last
//! observation), but the experiment harness runs many *independent*
//! simulations: replicas over seeds, the 3×3 matrix of Figure 4, the four
//! Table 4 methods — and the evaluation engine speculates on future
//! simplex candidates the same way (see `crate::eval`). Those fan out
//! across cores with `std::thread::scope` — no `unsafe`, no leaked
//! threads, no external crates, results returned in input order.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Map `f` over `items` in parallel, preserving order. Uses up to
/// `max_threads` worker threads (0 = number of available cores).
///
/// An explicit `max_threads == 1` never spawns: the mapping runs on the
/// calling thread. Memory is bounded by the output vector itself —
/// workers write each result straight into its slot (no channel, so a
/// fast producer can never buffer the whole result set twice).
///
/// A panic in `f` propagates to the caller when the scope joins.
pub fn parallel_map<I, O, F>(items: &[I], max_threads: usize, f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let threads = effective_threads(max_threads, items.len());
    if threads <= 1 {
        return items.iter().map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<O>>> = (0..items.len()).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let next = &next;
            let slots = &slots;
            let f = &f;
            scope.spawn(move || loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= items.len() {
                    break;
                }
                let out = f(&items[idx]);
                // Uncontended by construction: `idx` is claimed by
                // exactly one worker. A poisoned slot only means another
                // worker panicked mid-store; the scope join re-raises
                // that panic before the slot is ever read.
                if let Ok(mut slot) = slots[idx].lock() {
                    *slot = Some(out);
                }
            });
        }
        // `std::thread::scope` joins every worker here and re-raises the
        // first panic, so a half-filled result can never be observed.
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
        })
        .map(|o| {
            #[allow(clippy::expect_used)]
            o.expect("every index processed: scope joined all workers")
        })
        .collect()
}

/// Worker-thread count for `work` independent tasks under a
/// `max_threads` request: an explicit request is honoured exactly (never
/// silently inflated), `0` means one thread per available core, and the
/// result is clamped to `[1, work]` — more workers than tasks would only
/// spawn idle threads. `available_parallelism` failure (exotic
/// platforms, restricted cgroups) degrades to sequential, never panics.
pub fn effective_threads(max_threads: usize, work: usize) -> usize {
    let cap = if max_threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        max_threads
    };
    cap.min(work).max(1)
}

/// Convenience: run `f` for each seed in `0..reps` in parallel.
pub fn parallel_seeds<O, F>(reps: u64, f: F) -> Vec<O>
where
    O: Send,
    F: Fn(u64) -> O + Sync,
{
    let seeds: Vec<u64> = (0..reps).collect();
    parallel_map(&seeds, 0, |s| f(*s))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, 8, |&x| x * x);
        let expected: Vec<u64> = items.iter().map(|x| x * x).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn empty_input() {
        let out: Vec<u64> = parallel_map(&Vec::<u64>::new(), 4, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_thread_path() {
        let items = vec![1, 2, 3];
        let out = parallel_map(&items, 1, |&x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn single_thread_request_never_spawns() {
        // Regression: an explicit 1-thread request must run on the
        // calling thread, not on one spawned worker.
        let caller = std::thread::current().id();
        let items = vec![1, 2, 3];
        let ids = parallel_map(&items, 1, |_| std::thread::current().id());
        assert!(ids.iter().all(|id| *id == caller));
    }

    #[test]
    fn explicit_thread_request_is_honoured() {
        // Regression: `effective_threads` must never inflate an explicit
        // request (e.g. to the core count) — only clamp it to the work.
        assert_eq!(effective_threads(3, 100), 3);
        assert_eq!(effective_threads(3, 2), 2);
        assert_eq!(effective_threads(1, 100), 1);
        assert_eq!(effective_threads(64, 1), 1);
        // 0 = auto: at least one thread, never more than the work.
        assert!(effective_threads(0, 100) >= 1);
        assert_eq!(effective_threads(0, 1), 1);
    }

    #[test]
    fn more_threads_than_items() {
        let items = vec![5];
        let out = parallel_map(&items, 64, |&x| x * 2);
        assert_eq!(out, vec![10]);
    }

    #[test]
    fn parallel_seeds_runs_all() {
        let out = parallel_seeds(17, |s| s * 3);
        assert_eq!(out.len(), 17);
        assert_eq!(out[16], 48);
    }

    #[test]
    fn panic_in_worker_propagates() {
        let items: Vec<u64> = (0..32).collect();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            parallel_map(&items, 4, |&x| {
                if x == 13 {
                    panic!("boom at {x}");
                }
                x
            })
        }));
        assert!(caught.is_err(), "panic must not be swallowed");
    }

    #[test]
    fn heavy_work_is_actually_parallel_safe() {
        // Hash chains: result must be independent of scheduling.
        let items: Vec<u64> = (0..64).collect();
        let f = |&x: &u64| {
            let mut h = x;
            for _ in 0..10_000 {
                h = h.wrapping_mul(0x9E3779B97F4A7C15).rotate_left(17) ^ x;
            }
            h
        };
        let seq: Vec<u64> = items.iter().map(f).collect();
        let par = parallel_map(&items, 0, f);
        assert_eq!(seq, par);
    }
}
