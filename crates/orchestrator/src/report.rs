//! Plain-text table rendering for the experiment regenerators.

/// A simple aligned text table.
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Add a row; must match the header arity.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row arity must match headers"
        );
        self.rows.push(row);
        self
    }

    /// Render with padded columns and a separator under the header.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:<w$}"));
            }
            line.trim_end().to_string()
        };
        out.push_str(&render_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Format a number with fixed decimals.
pub fn fmt_f(x: f64, decimals: usize) -> String {
    format!("{x:.decimals$}")
}

/// Format a ratio as a signed percentage, e.g. `+16.2%`.
pub fn fmt_pct(ratio: f64) -> String {
    format!("{:+.1}%", ratio * 100.0)
}

/// Render a small ASCII sparkline of a series (figure-in-terminal).
pub fn sparkline(series: &[f64]) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if series.is_empty() {
        return String::new();
    }
    let min = series.iter().copied().fold(f64::INFINITY, f64::min);
    let max = series.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (max - min).max(1e-12);
    series
        .iter()
        .map(|&v| {
            let idx = (((v - min) / span) * 7.0).round() as usize;
            LEVELS[idx.min(7)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = TextTable::new(["Method", "WIPS", "Improvement"]);
        t.row(["None", "110.4", "-"]);
        t.row(["Default method", "130.6", "+18.3%"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Method"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[3].contains("+18.3%"));
        // Columns align: "WIPS" column starts at the same offset.
        let off_header = lines[0].find("WIPS").unwrap();
        let off_row = lines[3].find("130.6").unwrap();
        assert_eq!(off_header, off_row);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_f(1.23456, 2), "1.23");
        assert_eq!(fmt_pct(0.183), "+18.3%");
        assert_eq!(fmt_pct(-0.05), "-5.0%");
    }

    #[test]
    fn sparkline_shapes() {
        assert_eq!(sparkline(&[]), "");
        let s = sparkline(&[0.0, 0.5, 1.0]);
        assert_eq!(s.chars().count(), 3);
        assert!(s.starts_with('▁'));
        assert!(s.ends_with('█'));
        // Flat series doesn't panic (span guard).
        let flat = sparkline(&[5.0, 5.0, 5.0]);
        assert_eq!(flat.chars().count(), 3);
    }
}
