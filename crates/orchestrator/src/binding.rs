//! Mapping between cluster configurations and Harmony search spaces.
//!
//! Three layouts, one per §III tuning method:
//!
//! * **full** — every tunable of every node is its own dimension
//!   (the paper's "default method": one server, `n` grows with the
//!   cluster);
//! * **tier** — one 23-dimensional space covering one proxy + one web +
//!   one database server; values are *duplicated* across each tier
//!   (parameter duplication) or across one work line's tiers (parameter
//!   partitioning, one such space per line).

use cluster::config::{ClusterConfig, NodeId, NodeParams, Role, Topology};
use cluster::params::{
    DbParams, ProxyParams, WebParams, DB_TUNABLES, PROXY_TUNABLES, WEB_TUNABLES,
};
use harmony::param::ParamDef;
use harmony::space::{Configuration, ParamSpace};

fn defs_for_role(role: Role) -> &'static [cluster::params::TunableDef] {
    match role {
        Role::Proxy => &PROXY_TUNABLES,
        Role::App => &WEB_TUNABLES,
        Role::Db => &DB_TUNABLES,
    }
}

/// Number of tunables a node of `role` contributes.
pub fn dims_for_role(role: Role) -> usize {
    defs_for_role(role).len()
}

/// The full per-node space for `topology` (default method).
/// Dimension names are `"<role><node>.<param>"`.
pub fn full_space(topology: &Topology) -> ParamSpace {
    let mut defs = Vec::new();
    for (node, role) in topology.roles().iter().enumerate() {
        for t in defs_for_role(*role) {
            defs.push(ParamDef::new(
                format!("{}{}.{}", role.name(), node, t.name),
                t.min,
                t.max,
                t.default,
            ));
        }
    }
    ParamSpace::new(defs)
}

/// Translate a full-space configuration into a [`ClusterConfig`].
pub fn config_from_full(topology: &Topology, c: &Configuration) -> ClusterConfig {
    let mut node_params = Vec::with_capacity(topology.len());
    let mut cursor = 0;
    for role in topology.roles() {
        let n = dims_for_role(*role);
        let slice = &c.values()[cursor..cursor + n];
        node_params.push(params_from_slice(*role, slice));
        cursor += n;
    }
    debug_assert_eq!(cursor, c.len());
    #[allow(clippy::expect_used)]
    ClusterConfig::new(topology, node_params).expect("roles align by construction")
}

/// The 23-dimensional one-node-per-tier space (duplication/partitioning).
/// Dimension names are `"proxy.<p>" / "web.<p>" / "db.<p>"`.
pub fn tier_space() -> ParamSpace {
    let mut defs = Vec::new();
    for (prefix, tunables) in [
        ("proxy", &PROXY_TUNABLES[..]),
        ("web", &WEB_TUNABLES[..]),
        ("db", &DB_TUNABLES[..]),
    ] {
        for t in tunables {
            defs.push(ParamDef::new(
                format!("{prefix}.{}", t.name),
                t.min,
                t.max,
                t.default,
            ));
        }
    }
    ParamSpace::new(defs)
}

/// The per-tier sub-space (for one tuning server per tier, as parameter
/// duplication uses).
pub fn role_space(role: Role) -> ParamSpace {
    let prefix = match role {
        Role::Proxy => "proxy",
        Role::App => "web",
        Role::Db => "db",
    };
    ParamSpace::new(
        defs_for_role(role)
            .iter()
            .map(|t| ParamDef::new(format!("{prefix}.{}", t.name), t.min, t.max, t.default))
            .collect(),
    )
}

/// Split a 23-value tier configuration into typed parameter structs.
// Space bounds guarantee every slice parses; a mismatch is a programmer
// error worth a panic, not a recoverable condition.
#[allow(clippy::expect_used)]
pub fn split_tier_config(c: &Configuration) -> (ProxyParams, WebParams, DbParams) {
    let v = c.values();
    assert_eq!(v.len(), 23, "tier config must have 23 values");
    let proxy = ProxyParams::from_values(&v[0..7]).expect("bounds enforced by space");
    let web = WebParams::from_values(&v[7..14]).expect("bounds enforced by space");
    let db = DbParams::from_values(&v[14..23]).expect("bounds enforced by space");
    (proxy, web, db)
}

/// Build typed params for one node from its tunable-value slice.
#[allow(clippy::expect_used)]
pub fn params_from_slice(role: Role, values: &[i64]) -> NodeParams {
    match role {
        Role::Proxy => {
            NodeParams::Proxy(ProxyParams::from_values(values).expect("bounds enforced by space"))
        }
        Role::App => {
            NodeParams::App(WebParams::from_values(values).expect("bounds enforced by space"))
        }
        Role::Db => {
            NodeParams::Db(DbParams::from_values(values).expect("bounds enforced by space"))
        }
    }
}

/// Duplication: apply one tier configuration uniformly to every node.
pub fn config_from_tier(topology: &Topology, c: &Configuration) -> ClusterConfig {
    let (proxy, web, db) = split_tier_config(c);
    ClusterConfig::uniform(topology, proxy, web, db)
}

/// Duplication with per-tier servers: combine one configuration per role.
#[allow(clippy::expect_used)]
pub fn config_from_roles(
    topology: &Topology,
    proxy_c: &Configuration,
    web_c: &Configuration,
    db_c: &Configuration,
) -> ClusterConfig {
    let proxy = ProxyParams::from_values(proxy_c.values()).expect("bounds enforced");
    let web = WebParams::from_values(web_c.values()).expect("bounds enforced");
    let db = DbParams::from_values(db_c.values()).expect("bounds enforced");
    ClusterConfig::uniform(topology, proxy, web, db)
}

/// Partitioning: overwrite the nodes of one work line with the line's
/// tier configuration (duplicated within the line's tiers).
pub fn apply_line_config(
    config: &mut ClusterConfig,
    topology: &Topology,
    line_nodes: &[NodeId],
    c: &Configuration,
) {
    let (proxy, web, db) = split_tier_config(c);
    for &node in line_nodes {
        *config.node_mut(node) = match topology.role(node) {
            Role::Proxy => NodeParams::Proxy(proxy),
            Role::App => NodeParams::App(web),
            Role::Db => NodeParams::Db(db),
        };
    }
}

/// Extract the tier configuration (23 values) that `node_source` nodes of
/// a config currently hold — used to seed partitioned tuning from a
/// duplication result (the hybrid method).
pub fn tier_config_from(config: &ClusterConfig, topology: &Topology) -> Option<Configuration> {
    let proxy = topology.nodes_in(Role::Proxy).first().copied()?;
    let app = topology.nodes_in(Role::App).first().copied()?;
    let db = topology.nodes_in(Role::Db).first().copied()?;
    let mut values = Vec::with_capacity(23);
    values.extend_from_slice(&config.node(proxy).as_proxy()?.to_values());
    values.extend_from_slice(&config.node(app).as_app()?.to_values());
    values.extend_from_slice(&config.node(db).as_db()?.to_values());
    Some(Configuration::from_values(values))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_space_dimension_count() {
        let t = Topology::tiers(2, 2, 2).unwrap();
        let s = full_space(&t);
        assert_eq!(s.dims(), 2 * 7 + 2 * 7 + 2 * 9);
        assert_eq!(s.def(0).name, "proxy0.cache_mem");
        assert_eq!(s.def(14).name, "app2.minProcessors");
    }

    #[test]
    fn full_space_default_is_cluster_default() {
        let t = Topology::tiers(1, 2, 1).unwrap();
        let s = full_space(&t);
        let cfg = config_from_full(&t, &s.default_config());
        assert_eq!(cfg, ClusterConfig::defaults(&t));
    }

    #[test]
    fn tier_space_has_23_dims_and_roundtrips() {
        let s = tier_space();
        assert_eq!(s.dims(), 23);
        let (p, w, d) = split_tier_config(&s.default_config());
        assert_eq!(p, ProxyParams::default_config());
        assert_eq!(w, WebParams::default_config());
        assert_eq!(d, DbParams::default_config());
    }

    #[test]
    fn config_from_tier_duplicates_across_nodes() {
        let t = Topology::tiers(3, 2, 1).unwrap();
        let s = tier_space();
        let mut c = s.default_config();
        c.set(0, 33); // proxy.cache_mem
        let cfg = config_from_tier(&t, &c);
        for node in t.nodes_in(Role::Proxy) {
            assert_eq!(cfg.node(node).as_proxy().unwrap().cache_mem, 33);
        }
    }

    #[test]
    fn role_spaces_cover_the_tier_space() {
        let p = role_space(Role::Proxy);
        let w = role_space(Role::App);
        let d = role_space(Role::Db);
        assert_eq!(p.dims() + w.dims() + d.dims(), 23);
        let cfg = config_from_roles(
            &Topology::single(),
            &p.default_config(),
            &w.default_config(),
            &d.default_config(),
        );
        assert_eq!(cfg, ClusterConfig::defaults(&Topology::single()));
    }

    #[test]
    fn apply_line_config_touches_only_line_nodes() {
        let t = Topology::tiers(2, 2, 2).unwrap();
        let mut cfg = ClusterConfig::defaults(&t);
        let s = tier_space();
        let mut c = s.default_config();
        c.set(0, 60); // proxy.cache_mem
        apply_line_config(&mut cfg, &t, &[0, 2, 4], &c);
        assert_eq!(cfg.node(0).as_proxy().unwrap().cache_mem, 60);
        assert_eq!(
            cfg.node(1).as_proxy().unwrap().cache_mem,
            8,
            "other line untouched"
        );
        assert_eq!(cfg.node(2).as_app().unwrap().max_processors, 20);
    }

    #[test]
    fn tier_config_from_extracts_first_nodes() {
        let t = Topology::tiers(2, 1, 1).unwrap();
        let mut cfg = ClusterConfig::defaults(&t);
        if let NodeParams::Proxy(p) = cfg.node_mut(0) {
            p.cache_mem = 21;
        }
        let c = tier_config_from(&cfg, &t).unwrap();
        assert_eq!(c.get(0), 21);
        assert_eq!(c.len(), 23);
        // Roundtrip through config_from_tier reproduces node 0's params
        // everywhere.
        let cfg2 = config_from_tier(&t, &c);
        assert_eq!(cfg2.node(1).as_proxy().unwrap().cache_mem, 21);
    }

    #[test]
    fn full_space_roundtrip_preserves_custom_values() {
        let t = Topology::tiers(1, 1, 1).unwrap();
        let s = full_space(&t);
        let mut c = s.default_config();
        // web0.maxProcessors is dim 7 + 1.
        c.set(8, 100);
        let cfg = config_from_full(&t, &c);
        assert_eq!(cfg.node(1).as_app().unwrap().max_processors, 100);
    }
}
