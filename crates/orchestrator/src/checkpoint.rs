//! Crash-safe session persistence: checkpoint policy, session
//! fingerprints, and the domain ↔ [`persist::State`] conversions.
//!
//! A checkpointed session writes one journal record per tuning iteration
//! (the measured WIPS and everything else the tuner's deterministic
//! replay cannot re-derive) plus a periodic atomic snapshot of the full
//! tuner state. Recovery loads the newest intact snapshot and *replays*
//! the journal records after it — proposals are re-derived by running the
//! tuner forward and feeding it the journaled measurements, so nothing is
//! re-simulated and the resumed session continues bit-for-bit where the
//! interrupted one stopped.
//!
//! Every snapshot and journal carries a *fingerprint* of the session
//! environment (topology, workload, seeds, fault plan, method, iteration
//! budget). Resuming with a different environment is a typed
//! [`SessionError::Checkpoint`] error, never a silently diverging run.

use crate::reconfigure::ReconfigEvent;
use crate::resilient::{DetectionEvent, RecoveryAction};
use crate::session::{IterationRecord, SessionConfig, SessionError};
use cluster::config::{ClusterConfig, NodeParams, Role, Topology};
use cluster::params::{DbParams, ProxyParams, WebParams};
use persist::{CheckpointStore, PersistError, State};
use std::path::PathBuf;
use tpcw::mix::Workload;

/// Where and how often a session checkpoints itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Directory holding the journal and snapshots (created if missing).
    pub dir: PathBuf,
    /// Snapshot cadence in iterations. The journal gets one record per
    /// iteration regardless; this only controls how much journal a
    /// resume has to replay.
    pub every: u32,
    /// Resume from whatever the directory holds instead of wiping it.
    pub resume: bool,
}

impl CheckpointPolicy {
    /// Checkpoint into `dir`, snapshotting every 10 iterations.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        CheckpointPolicy {
            dir: dir.into(),
            every: 10,
            resume: false,
        }
    }

    /// Builder: snapshot every `n` iterations (`n` is clamped to ≥ 1).
    pub fn every(mut self, n: u32) -> Self {
        self.every = n.max(1);
        self
    }

    /// Builder: resume a previous session from the directory.
    pub fn resume(mut self, on: bool) -> Self {
        self.resume = on;
        self
    }
}

/// FNV-1a over the canonical description of a session. Not
/// cryptographic — it only has to catch honest mistakes (resuming with a
/// different seed, plan, topology, or method).
pub fn session_fingerprint(
    cfg: &SessionConfig,
    kind: &str,
    iterations: u32,
    switch_at: u32,
) -> u64 {
    use std::fmt::Write as _;
    let mut canon = String::with_capacity(256);
    for role in cfg.topology.roles() {
        canon.push_str(role.name());
        canon.push(',');
    }
    let _ = write!(
        canon,
        "|{}|{}|{:?}|{:?}|{:?}|{}|{}|{}|{:?}|{}|",
        cfg.workload.name(),
        cfg.population,
        cfg.plan,
        cfg.scale,
        cfg.spec,
        cfg.base_seed,
        cfg.pin_seed,
        cfg.markov_sessions,
        cfg.node_specs,
        cfg.fault_seed,
    );
    match cfg.fault_plan.as_ref() {
        Some(plan) => canon.push_str(&plan.to_json()),
        None => canon.push('-'),
    }
    // The load model is part of the environment: a cohort session's
    // measurements are not interchangeable with a per-browser session's,
    // so resuming across models (or across bin counts) must be refused.
    // Appended only in cohort mode so every pre-existing per-browser
    // fingerprint — including the golden ones in BENCH files — is
    // unchanged.
    if let cluster::model::LoadModel::Cohort { bins } = cfg.load_model {
        let _ = write!(canon, "|cohort:{bins}");
    }
    // The tuning algorithm is part of the environment: resuming a
    // simplex checkpoint under `--tuner tuna` must be refused.
    let _ = write!(canon, "|{}|{kind}|{iterations}|{switch_at}", cfg.tuner);
    fnv1a(canon.as_bytes())
}

pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// What resuming found in the checkpoint directory.
#[derive(Debug)]
pub struct Resumed {
    /// Newest intact snapshot, as `(iteration, state)`.
    pub snapshot: Option<(u64, State)>,
    /// Journal records to replay (iterations ≥ the snapshot's).
    pub deltas: Vec<State>,
    /// Snapshot files that failed verification and were renamed aside.
    pub quarantined: usize,
    /// Whether the journal had a torn tail (truncated away on open).
    pub torn_tail: bool,
}

/// A session's live handle on its checkpoint directory.
#[derive(Debug)]
pub struct Checkpointer {
    store: CheckpointStore,
    every: u32,
    fingerprint: u64,
}

fn ck(e: PersistError) -> SessionError {
    SessionError::Checkpoint(e.to_string())
}

fn header(fingerprint: u64) -> State {
    State::map()
        .with("header", State::Bool(true))
        .with("fingerprint", State::U64(fingerprint))
}

fn is_header(record: &State) -> bool {
    record.get("header").and_then(State::as_bool) == Some(true)
}

impl Checkpointer {
    /// Open the checkpoint directory. Without `resume` the directory is
    /// wiped and a fresh journal started; with it, the previous session's
    /// snapshot and journal are recovered (fingerprint-checked) and
    /// returned for replay.
    pub fn open(
        policy: &CheckpointPolicy,
        fingerprint: u64,
    ) -> Result<(Checkpointer, Option<Resumed>), SessionError> {
        let mut store = CheckpointStore::open(&policy.dir).map_err(ck)?;
        let every = policy.every.max(1);
        if !policy.resume {
            store.start_fresh().map_err(ck)?;
            let mut me = Checkpointer {
                store,
                every,
                fingerprint,
            };
            me.store.append(&header(fingerprint)).map_err(ck)?;
            return Ok((me, None));
        }

        let rec = store.recover().map_err(ck)?;
        let mut from_iteration = 0u64;
        if let Some((iteration, state)) = &rec.snapshot {
            let found = state.field_u64("fingerprint").map_err(ck)?;
            if found != fingerprint {
                return Err(SessionError::Checkpoint(format!(
                    "snapshot fingerprint {found:#018x} does not match this \
                     session ({fingerprint:#018x}) — same seeds, plan, \
                     topology, and method are required to resume"
                )));
            }
            from_iteration = *iteration;
        }
        let mut deltas = Vec::new();
        for record in &rec.journal {
            if is_header(record) {
                let found = record.field_u64("fingerprint").map_err(ck)?;
                if found != fingerprint {
                    return Err(SessionError::Checkpoint(format!(
                        "journal fingerprint {found:#018x} does not match this \
                         session ({fingerprint:#018x}) — same seeds, plan, \
                         topology, and method are required to resume"
                    )));
                }
                continue;
            }
            if record.field_u64("iteration").map_err(ck)? >= from_iteration {
                deltas.push(record.clone());
            }
        }
        let mut me = Checkpointer {
            store,
            every,
            fingerprint,
        };
        if rec.journal.is_empty() {
            // Nothing to resume (or the journal was lost): start the new
            // stream with a header so later resumes can still validate.
            me.store.append(&header(fingerprint)).map_err(ck)?;
        }
        Ok((
            me,
            Some(Resumed {
                snapshot: rec.snapshot,
                deltas,
                quarantined: rec.quarantined.len(),
                torn_tail: rec.torn_tail,
            }),
        ))
    }

    /// Append one per-iteration delta to the journal.
    pub fn append(&mut self, delta: State) -> Result<(), SessionError> {
        self.store.append(&delta).map_err(ck)
    }

    /// Snapshot if `next_iteration` hits the cadence. A completed session
    /// deliberately never snapshots its final state: the directory of a
    /// finished k-iteration run is byte-identical to that of a process
    /// killed at the same boundary, which is what makes kill-and-resume
    /// testable without subprocess machinery.
    pub fn maybe_snapshot(
        &mut self,
        next_iteration: u32,
        total_iterations: u32,
        state: impl FnOnce() -> State,
    ) -> Result<(), SessionError> {
        if next_iteration == 0
            || next_iteration >= total_iterations
            || !next_iteration.is_multiple_of(self.every)
        {
            return Ok(());
        }
        let snapshot = state()
            .with("fingerprint", State::U64(self.fingerprint))
            .with("iteration", State::U64(next_iteration as u64));
        self.store
            .write_snapshot(next_iteration as u64, &snapshot)
            .map_err(ck)
    }
}

// ---------------------------------------------------------------------
// Domain ↔ State conversions
// ---------------------------------------------------------------------

fn schema(msg: impl Into<String>) -> PersistError {
    PersistError::Schema(msg.into())
}

pub(crate) fn role_from_name(name: &str) -> Result<Role, PersistError> {
    Role::ALL
        .into_iter()
        .find(|r| r.name() == name)
        .ok_or_else(|| schema(format!("unknown role '{name}'")))
}

pub(crate) fn workload_from_name(name: &str) -> Result<Workload, PersistError> {
    Workload::ALL
        .into_iter()
        .find(|w| w.name() == name)
        .ok_or_else(|| schema(format!("unknown workload '{name}'")))
}

pub(crate) fn topology_state(topology: &Topology) -> State {
    State::List(
        topology
            .roles()
            .iter()
            .map(|r| State::Str(r.name().to_string()))
            .collect(),
    )
}

pub(crate) fn topology_from_state(state: &State) -> Result<Topology, PersistError> {
    let roles = state
        .as_list()
        .ok_or_else(|| schema("topology is not a list"))?
        .iter()
        .map(|s| {
            s.as_str()
                .ok_or_else(|| schema("topology role is not a string"))
                .and_then(role_from_name)
        })
        .collect::<Result<Vec<Role>, _>>()?;
    Topology::new(roles).map_err(|e| schema(format!("invalid topology: {e}")))
}

fn node_params_from_values(role: Role, values: &[i64]) -> Result<NodeParams, PersistError> {
    let out_of_range = |e| schema(format!("{} node values out of range: {e}", role.name()));
    Ok(match role {
        Role::Proxy => NodeParams::Proxy(ProxyParams::from_values(values).map_err(out_of_range)?),
        Role::App => NodeParams::App(WebParams::from_values(values).map_err(out_of_range)?),
        Role::Db => NodeParams::Db(DbParams::from_values(values).map_err(out_of_range)?),
    })
}

/// A full cluster configuration as a list of `{role, values}` maps — the
/// same per-node value vectors [`crate::session::config_summary`] prints.
pub(crate) fn config_state(config: &ClusterConfig) -> State {
    State::List(
        config
            .nodes()
            .iter()
            .map(|n| {
                let values = if let Some(p) = n.as_proxy() {
                    p.to_values().to_vec()
                } else if let Some(w) = n.as_app() {
                    w.to_values().to_vec()
                } else if let Some(d) = n.as_db() {
                    d.to_values().to_vec()
                } else {
                    Vec::new()
                };
                State::map()
                    .with("role", State::Str(n.role().name().to_string()))
                    .with("values", State::i64_list(&values))
            })
            .collect(),
    )
}

pub(crate) fn config_from_state(state: &State) -> Result<ClusterConfig, PersistError> {
    let nodes = state
        .as_list()
        .ok_or_else(|| schema("cluster config is not a list"))?;
    let mut roles = Vec::with_capacity(nodes.len());
    let mut params = Vec::with_capacity(nodes.len());
    for node in nodes {
        let role = role_from_name(node.field_str("role")?)?;
        let values = node.require("values")?.to_i64_vec()?;
        roles.push(role);
        params.push(node_params_from_values(role, &values)?);
    }
    let topology = Topology::new(roles).map_err(|e| schema(format!("invalid topology: {e}")))?;
    ClusterConfig::new(&topology, params).map_err(|e| schema(format!("invalid config: {e}")))
}

pub(crate) fn records_state(records: &[IterationRecord]) -> State {
    State::List(
        records
            .iter()
            .map(|r| {
                State::map()
                    .with("iteration", State::U64(r.iteration as u64))
                    .with("wips", State::F64(r.wips))
                    .with("line_wips", State::f64_list(&r.line_wips))
                    .with("workload", State::Str(r.workload.name().to_string()))
                    .with("failed", State::U64(r.failed))
            })
            .collect(),
    )
}

pub(crate) fn records_from_state(state: &State) -> Result<Vec<IterationRecord>, PersistError> {
    state
        .as_list()
        .ok_or_else(|| schema("records is not a list"))?
        .iter()
        .map(|r| {
            Ok(IterationRecord {
                iteration: r.field_u64("iteration")? as u32,
                wips: r.field_f64("wips")?,
                line_wips: r.require("line_wips")?.to_f64_vec()?,
                workload: workload_from_name(r.field_str("workload")?)?,
                failed: r.field_u64("failed")?,
            })
        })
        .collect()
}

fn recovery_action_name(name: &str) -> Result<&'static str, PersistError> {
    Ok(match name {
        "retry" => "retry",
        "remeasure" => "remeasure",
        "breaker_open" => "breaker_open",
        "breaker_skip" => "breaker_skip",
        "breaker_probe" => "breaker_probe",
        "timeout" => "timeout",
        "bulkhead_skip" => "bulkhead_skip",
        "degraded" => "degraded",
        "reconfig" => "reconfig",
        other => return Err(schema(format!("unknown recovery action '{other}'"))),
    })
}

pub(crate) fn recoveries_state(recoveries: &[RecoveryAction]) -> State {
    State::List(
        recoveries
            .iter()
            .map(|r| {
                State::map()
                    .with("iteration", State::U64(r.iteration as u64))
                    .with("action", State::Str(r.action.to_string()))
                    .with("attempt", State::U64(r.attempt as u64))
                    .with("delay_s", State::F64(r.delay_s))
                    .with("wips", State::F64(r.wips))
            })
            .collect(),
    )
}

pub(crate) fn recoveries_from_state(state: &State) -> Result<Vec<RecoveryAction>, PersistError> {
    state
        .as_list()
        .ok_or_else(|| schema("recoveries is not a list"))?
        .iter()
        .map(|r| {
            Ok(RecoveryAction {
                iteration: r.field_u64("iteration")? as u32,
                action: recovery_action_name(r.field_str("action")?)?,
                attempt: r.field_u64("attempt")? as u32,
                delay_s: r.field_f64("delay_s")?,
                wips: r.field_f64("wips")?,
            })
        })
        .collect()
}

pub(crate) fn reconfig_state(event: &ReconfigEvent) -> State {
    State::map()
        .with("iteration", State::U64(event.iteration as u64))
        .with("node", State::U64(event.node as u64))
        .with("from_tier", State::Str(event.from_tier.name().to_string()))
        .with("to_tier", State::Str(event.to_tier.name().to_string()))
        .with("immediate", State::Bool(event.immediate))
        .with("cost_value", State::F64(event.cost_value))
}

pub(crate) fn reconfig_from_state(state: &State) -> Result<ReconfigEvent, PersistError> {
    Ok(ReconfigEvent {
        iteration: state.field_u64("iteration")? as u32,
        node: state.field_u64("node")? as usize,
        from_tier: role_from_name(state.field_str("from_tier")?)?,
        to_tier: role_from_name(state.field_str("to_tier")?)?,
        immediate: state.field_bool("immediate")?,
        cost_value: state.field_f64("cost_value")?,
    })
}

fn membership_state_name(name: &str) -> Result<&'static str, PersistError> {
    Ok(detect::NodeState::from_name(name)?.name())
}

pub(crate) fn detections_state(events: &[DetectionEvent]) -> State {
    State::List(
        events
            .iter()
            .map(|d| {
                State::map()
                    .with("iteration", State::U64(d.iteration as u64))
                    .with("node", State::U64(d.node as u64))
                    .with("at_s", State::F64(d.at_s))
                    .with("from", State::Str(d.from.to_string()))
                    .with("to", State::Str(d.to.to_string()))
                    .with("phi", State::F64(d.phi))
                    .with("truth_crashed", State::Bool(d.truth_crashed))
                    .with("latency_s", State::F64(d.latency_s))
            })
            .collect(),
    )
}

pub(crate) fn detections_from_state(state: &State) -> Result<Vec<DetectionEvent>, PersistError> {
    state
        .as_list()
        .ok_or_else(|| schema("detections is not a list"))?
        .iter()
        .map(|d| {
            Ok(DetectionEvent {
                iteration: d.field_u64("iteration")? as u32,
                node: d.field_u64("node")? as usize,
                at_s: d.field_f64("at_s")?,
                from: membership_state_name(d.field_str("from")?)?,
                to: membership_state_name(d.field_str("to")?)?,
                phi: d.field_f64("phi")?,
                truth_crashed: d.field_bool("truth_crashed")?,
                latency_s: d.field_f64("latency_s")?,
            })
        })
        .collect()
}

pub(crate) fn reconfigs_state(events: &[ReconfigEvent]) -> State {
    State::List(events.iter().map(reconfig_state).collect())
}

pub(crate) fn reconfigs_from_state(state: &State) -> Result<Vec<ReconfigEvent>, PersistError> {
    state
        .as_list()
        .ok_or_else(|| schema("reconfigs is not a list"))?
        .iter()
        .map(reconfig_from_state)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpcw::metrics::IntervalPlan;

    fn cfg() -> SessionConfig {
        SessionConfig::new(
            Topology::tiers(1, 2, 1).expect("topology"),
            Workload::Shopping,
            300,
        )
        .plan(IntervalPlan::tiny())
    }

    #[test]
    fn fingerprint_is_sensitive_to_the_environment() {
        let base = session_fingerprint(&cfg(), "tune", 10, 10);
        assert_eq!(base, session_fingerprint(&cfg(), "tune", 10, 10));
        assert_ne!(
            base,
            session_fingerprint(&cfg().base_seed(7), "tune", 10, 10)
        );
        assert_ne!(base, session_fingerprint(&cfg(), "resilient", 10, 10));
        assert_ne!(base, session_fingerprint(&cfg(), "tune", 11, 11));
        assert_ne!(
            base,
            session_fingerprint(&cfg().workload(Workload::Ordering), "tune", 10, 10)
        );
        assert_ne!(
            base,
            session_fingerprint(
                &cfg().fault_plan(faults::FaultPlan::new().crash(1.0, 0)),
                "tune",
                10,
                10
            )
        );
    }

    #[test]
    fn fingerprint_separates_load_models() {
        use cluster::model::LoadModel;
        let base = session_fingerprint(&cfg(), "tune", 10, 10);
        // Per-browser is the default; spelling it out changes nothing, so
        // every fingerprint minted before the cohort model exists is
        // still valid.
        assert_eq!(
            base,
            session_fingerprint(&cfg().load_model(LoadModel::PerBrowser), "tune", 10, 10)
        );
        let cohort = session_fingerprint(
            &cfg().load_model(LoadModel::Cohort { bins: 64 }),
            "tune",
            10,
            10,
        );
        assert_ne!(
            base, cohort,
            "cohort sessions must not resume per-browser state"
        );
        // The bin count shapes the think-time quantisation, so it is
        // part of the environment too.
        assert_ne!(
            cohort,
            session_fingerprint(
                &cfg().load_model(LoadModel::Cohort { bins: 32 }),
                "tune",
                10,
                10,
            )
        );
    }

    #[test]
    fn resume_across_load_models_is_refused() {
        use cluster::model::LoadModel;
        let dir = std::env::temp_dir().join(format!(
            "ckpt-loadmodel-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let policy = CheckpointPolicy::new(&dir).every(2);
        // A per-browser session checkpoints...
        let pb = session_fingerprint(&cfg(), "tune", 10, 10);
        let (mut ckpt, _) = Checkpointer::open(&policy, pb).expect("fresh");
        ckpt.append(State::map().with("iteration", State::U64(0)))
            .expect("append");
        drop(ckpt);
        // ...and a cohort invocation pointed at the same directory is a
        // typed refusal, not a silently diverging run.
        let cohort = session_fingerprint(
            &cfg().load_model(LoadModel::Cohort { bins: 64 }),
            "tune",
            10,
            10,
        );
        let resume_policy = policy.clone().resume(true);
        let err = Checkpointer::open(&resume_policy, cohort).unwrap_err();
        assert!(matches!(err, SessionError::Checkpoint(_)), "{err:?}");
        // The matching model still resumes.
        assert!(Checkpointer::open(&resume_policy, pb).is_ok());
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn config_roundtrips_through_state() {
        let topology = Topology::tiers(2, 1, 1).expect("topology");
        let mut config = ClusterConfig::defaults(&topology);
        if let NodeParams::Proxy(p) = config.node_mut(0) {
            p.cache_mem = 33;
        }
        let back = config_from_state(&config_state(&config)).expect("roundtrip");
        assert_eq!(back, config);
    }

    #[test]
    fn config_from_state_rejects_out_of_range_values() {
        let bad = State::List(vec![State::map()
            .with("role", State::Str("proxy".into()))
            .with("values", State::i64_list(&[-1, -1, -1, -1, -1, -1, -1]))]);
        assert!(matches!(
            config_from_state(&bad),
            Err(PersistError::Schema(_))
        ));
    }

    #[test]
    fn records_and_recoveries_roundtrip() {
        let records = vec![IterationRecord {
            iteration: 3,
            wips: 12.5,
            line_wips: vec![6.25, 6.25],
            workload: Workload::Browsing,
            failed: 2,
        }];
        assert_eq!(
            records_from_state(&records_state(&records)).expect("records"),
            records
        );
        let recoveries = vec![RecoveryAction {
            iteration: 3,
            action: "retry",
            attempt: 2,
            delay_s: 1.5,
            wips: 0.0,
        }];
        let back = recoveries_from_state(&recoveries_state(&recoveries)).expect("recoveries");
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].action, "retry");
        assert_eq!(back[0].delay_s, 1.5);
        assert!(recoveries_from_state(&State::List(vec![State::map()
            .with("iteration", State::U64(0))
            .with("action", State::Str("explode".into()))
            .with("attempt", State::U64(0))
            .with("delay_s", State::F64(0.0))
            .with("wips", State::F64(0.0))]))
        .is_err());
    }

    #[test]
    fn reconfig_roundtrips() {
        let event = ReconfigEvent {
            iteration: 9,
            node: 2,
            from_tier: Role::Db,
            to_tier: Role::App,
            immediate: true,
            cost_value: 0.25,
        };
        let back = reconfig_from_state(&reconfig_state(&event)).expect("reconfig");
        assert_eq!(back.node, 2);
        assert_eq!(back.from_tier, Role::Db);
        assert_eq!(back.to_tier, Role::App);
        assert!(back.immediate);
    }

    #[test]
    fn open_fresh_resume_and_fingerprint_mismatch() {
        let dir = std::env::temp_dir().join(format!(
            "ckpt-open-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let policy = CheckpointPolicy::new(&dir).every(2);
        let (mut ckpt, resumed) = Checkpointer::open(&policy, 0xABCD).expect("fresh");
        assert!(resumed.is_none());
        ckpt.append(State::map().with("iteration", State::U64(0)))
            .expect("append");
        ckpt.maybe_snapshot(1, 10, || State::map().with("kind", State::Str("t".into())))
            .expect("iteration 1 is off-cadence, no snapshot");
        drop(ckpt);

        let resume_policy = policy.clone().resume(true);
        let (_, resumed) = Checkpointer::open(&resume_policy, 0xABCD).expect("resume");
        let resumed = resumed.expect("resumed");
        assert_eq!(resumed.deltas.len(), 1);
        assert!(resumed.snapshot.is_none());

        let err = Checkpointer::open(&resume_policy, 0xBEEF).unwrap_err();
        assert!(matches!(err, SessionError::Checkpoint(_)), "{err:?}");
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn final_snapshot_is_never_written() {
        let dir = std::env::temp_dir().join(format!(
            "ckpt-final-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let policy = CheckpointPolicy::new(&dir).every(1);
        let (mut ckpt, _) = Checkpointer::open(&policy, 1).expect("fresh");
        for i in 0..4u32 {
            ckpt.append(State::map().with("iteration", State::U64(i as u64)))
                .expect("append");
            ckpt.maybe_snapshot(i + 1, 4, State::map).expect("snapshot");
        }
        drop(ckpt);
        let snaps: Vec<String> = std::fs::read_dir(&dir)
            .expect("dir")
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.ends_with(".ckpt"))
            .collect();
        assert!(
            !snaps.iter().any(|n| n.contains("00000004")),
            "completion must not snapshot: {snaps:?}"
        );
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}
