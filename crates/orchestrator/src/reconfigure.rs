//! Sessions with automatic cluster reconfiguration (§IV, Figure 7).
//!
//! Parameter tuning (duplication servers — they survive topology changes
//! because their spaces are per-tier, not per-node) runs every iteration;
//! the reconfiguration algorithm runs at a lower frequency, reading the
//! EMA-smoothed per-node utilizations, and may move one node to another
//! tier. A moved node restarts with the destination tier's current
//! configuration (cold caches — handled naturally because every iteration
//! rebuilds and rewarms the world).

use crate::binding;
use crate::session::{IterationRecord, SessionConfig, SessionError, SessionObserver};
use cluster::config::{Role, Topology};
use cluster::node::NodeUtilization;
use harmony::monitor::{UtilizationMonitor, UtilizationSnapshot};
use harmony::reconfig::{
    decide, CostModel, NodeCostInputs, NodeReport, ReconfigDecision, Thresholds,
};
use harmony::server::HarmonyServer;
use harmony::simplex::SimplexTuner;
use tpcw::mix::Workload;

/// Reconfiguration-session settings.
#[derive(Debug, Clone)]
pub struct ReconfigSettings {
    /// Run the check every this many iterations (paper: ~50). Use
    /// `force_check_at` for the Figure 7 forced single check.
    pub check_every: Option<u32>,
    /// Additionally force exactly one check right after this iteration.
    pub force_check_at: Option<u32>,
    pub thresholds: Thresholds,
    pub cost_model: CostModel,
    /// EMA weight for the utilization monitor.
    pub monitor_alpha: f64,
    /// Keep parameter tuning running during the session (the paper does).
    /// Figure 7 freezes it to the default configuration so the measured
    /// gain isolates the reconfiguration effect — see EXPERIMENTS.md.
    pub tune_during: bool,
}

impl Default for ReconfigSettings {
    fn default() -> Self {
        ReconfigSettings {
            check_every: Some(50),
            force_check_at: None,
            thresholds: Thresholds::default(),
            cost_model: CostModel::default(),
            monitor_alpha: 0.3,
            tune_during: true,
        }
    }
}

/// A topology change that happened during the run.
#[derive(Debug, Clone)]
pub struct ReconfigEvent {
    pub iteration: u32,
    pub node: usize,
    pub from_tier: Role,
    pub to_tier: Role,
    pub immediate: bool,
    pub cost_value: f64,
}

/// Result of a reconfiguration session.
#[derive(Debug, Clone)]
pub struct ReconfigRun {
    pub records: Vec<IterationRecord>,
    pub events: Vec<ReconfigEvent>,
    pub final_topology: Topology,
}

impl ReconfigRun {
    /// Per-iteration WIPS series.
    pub fn wips_series(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.wips).collect()
    }

    /// Mean WIPS over `[start, end)`.
    pub fn mean_wips(&self, start: usize, end: usize) -> f64 {
        let window: Vec<_> = self.records.iter().take(end).skip(start).collect();
        if window.is_empty() {
            return 0.0;
        }
        window.iter().map(|r| r.wips).sum::<f64>() / window.len() as f64
    }
}

fn to_snapshot(u: &NodeUtilization) -> UtilizationSnapshot {
    UtilizationSnapshot {
        cpu: u.cpu,
        disk: u.disk,
        net: u.net,
        mem: u.mem,
    }
}

/// Run tuning + reconfiguration against a per-iteration workload function.
pub fn run_reconfig_session(
    base: &SessionConfig,
    settings: &ReconfigSettings,
    iterations: u32,
    workload_at: impl Fn(u32) -> Workload,
) -> Result<ReconfigRun, SessionError> {
    run_reconfig_session_observed(
        base,
        settings,
        iterations,
        workload_at,
        &mut SessionObserver::none(),
    )
}

/// [`run_reconfig_session`] with per-iteration trace/metrics observation.
/// Besides the usual `iteration` records, every accepted node move emits a
/// `reconfig` record.
pub fn run_reconfig_session_observed(
    base: &SessionConfig,
    settings: &ReconfigSettings,
    iterations: u32,
    workload_at: impl Fn(u32) -> Workload,
    observer: &mut SessionObserver,
) -> Result<ReconfigRun, SessionError> {
    base.validate_faults()?;
    let mut topology = base.topology.clone();
    let mut servers = [
        HarmonyServer::new(
            "proxy-tier",
            Box::new(SimplexTuner::new(binding::role_space(Role::Proxy))),
        ),
        HarmonyServer::new(
            "web-tier",
            Box::new(SimplexTuner::new(binding::role_space(Role::App))),
        ),
        HarmonyServer::new(
            "db-tier",
            Box::new(SimplexTuner::new(binding::role_space(Role::Db))),
        ),
    ];
    let mut monitor = UtilizationMonitor::new(topology.len(), settings.monitor_alpha);
    let mut records = Vec::with_capacity(iterations as usize);
    let mut events = Vec::new();
    let mut best_wips = f64::NEG_INFINITY;
    let mut best_iter = 0;

    for i in 0..iterations {
        let t0 = std::time::Instant::now();
        let workload = workload_at(i);
        let config = if settings.tune_during {
            let pc = servers[0].next_config();
            let wc = servers[1].next_config();
            let dc = servers[2].next_config();
            binding::config_from_roles(&topology, &pc, &wc, &dc)
        } else {
            cluster::config::ClusterConfig::defaults(&topology)
        };

        let cfg = base.clone().topology(topology.clone()).workload(workload);
        let out = cfg.evaluate_observed(config.clone(), i, observer.registry());
        let wips = out.metrics.wips;
        if settings.tune_during {
            for s in &mut servers {
                s.report(wips);
            }
        }
        if wips > best_wips {
            best_wips = wips;
            best_iter = i;
        }
        let snapshots: Vec<UtilizationSnapshot> =
            out.node_utilization.iter().map(to_snapshot).collect();
        monitor.observe(&snapshots);
        observer.record_iteration(
            &cfg,
            "reconfig",
            i,
            &config,
            &out,
            best_wips,
            best_iter,
            &servers[0].diagnostics(),
            t0.elapsed().as_secs_f64() * 1e3,
        );
        records.push(IterationRecord {
            iteration: i,
            wips,
            line_wips: out.line_wips,
            workload,
            failed: out.total_failed,
        });

        let due = settings
            .check_every
            .map(|p| p > 0 && (i + 1) % p == 0)
            .unwrap_or(false)
            || settings.force_check_at == Some(i);
        if due {
            if let Some(decision) = check(&topology, &monitor, settings, &out.node_utilization) {
                let from = topology.role(decision.node);
                if let Ok(next) = topology.reassign(decision.node, decision.to_tier) {
                    observer.record_reconfig(
                        i,
                        decision.node,
                        from.name(),
                        decision.to_tier.name(),
                        decision.immediate,
                        decision.cost_value,
                    );
                    events.push(ReconfigEvent {
                        iteration: i,
                        node: decision.node,
                        from_tier: from,
                        to_tier: decision.to_tier,
                        immediate: decision.immediate,
                        cost_value: decision.cost_value,
                    });
                    topology = next;
                    monitor.reset(topology.len());
                }
            }
        }
    }
    observer.flush();
    Ok(ReconfigRun {
        records,
        events,
        final_topology: topology,
    })
}

fn check(
    topology: &Topology,
    monitor: &UtilizationMonitor,
    settings: &ReconfigSettings,
    latest: &[NodeUtilization],
) -> Option<ReconfigDecision<Role>> {
    let smoothed = monitor.smoothed();
    let reports: Vec<NodeReport<Role>> = smoothed
        .iter()
        .enumerate()
        .map(|(node, util)| NodeReport {
            node,
            tier: topology.role(node),
            util: *util,
            cost: cost_inputs(&latest[node]),
        })
        .collect();
    decide(&reports, &settings.thresholds, &settings.cost_model, |t| {
        topology.count(t)
    })
}

/// Cost-model inputs estimated from the node's latest utilization: busier
/// nodes hold more jobs; per-job move and process times are fixed
/// calibration constants (documented in DESIGN.md §4).
fn cost_inputs(u: &NodeUtilization) -> NodeCostInputs {
    NodeCostInputs {
        jobs: 2.0 + 30.0 * u.cpu.max(u.disk),
        move_cost: 0.2,
        avg_process_time: 0.8,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpcw::metrics::IntervalPlan;

    fn base(topology: Topology, pop: u32) -> SessionConfig {
        SessionConfig::new(topology, Workload::Browsing, pop).plan(IntervalPlan::tiny())
    }

    #[test]
    fn session_without_pressure_never_reconfigures() {
        let cfg = base(Topology::tiers(2, 2, 1).unwrap(), 100);
        let settings = ReconfigSettings {
            check_every: Some(2),
            ..Default::default()
        };
        let run =
            run_reconfig_session(&cfg, &settings, 6, |_| Workload::Shopping).expect("session");
        assert!(run.events.is_empty(), "events: {:?}", run.events);
        assert_eq!(run.final_topology, cfg.topology);
        assert_eq!(run.records.len(), 6);
    }

    #[test]
    fn forced_check_fires_once() {
        let cfg = base(Topology::tiers(2, 2, 1).unwrap(), 100);
        let settings = ReconfigSettings {
            check_every: None,
            force_check_at: Some(3),
            ..Default::default()
        };
        let run =
            run_reconfig_session(&cfg, &settings, 6, |_| Workload::Browsing).expect("session");
        // May or may not move (low load => probably not), but must not
        // crash and must keep all iterations.
        assert_eq!(run.records.len(), 6);
        assert!(run.events.len() <= 1);
    }

    #[test]
    fn overloaded_proxy_tier_attracts_a_node() {
        // Browsing at high population saturates the proxy disk; the app
        // tier idles => an app node should move to the proxy tier.
        let cfg = base(Topology::tiers(1, 3, 1).unwrap(), 1600);
        let settings = ReconfigSettings {
            check_every: None,
            force_check_at: Some(2),
            thresholds: Thresholds {
                high: 0.80,
                low: 0.35,
            },
            ..Default::default()
        };
        let run =
            run_reconfig_session(&cfg, &settings, 4, |_| Workload::Browsing).expect("session");
        assert_eq!(run.events.len(), 1, "expected one move: {:?}", run.events);
        let e = &run.events[0];
        assert_eq!(e.to_tier, Role::Proxy);
        assert_eq!(e.from_tier, Role::App);
        assert_eq!(run.final_topology.count(Role::Proxy), 2);
        assert_eq!(run.final_topology.count(Role::App), 2);
    }
}
