//! Figure 4: no single configuration is good for every workload.
//!
//! For each workload, take the best configuration found after the tuning
//! run and apply it to *all three* workloads. The paper's finding: each
//! column of the resulting 3×3 WIPS matrix is won by its own workload's
//! configuration, and the diagonal improves on the default by 5–16%.

use super::{population_for, Effort};
use crate::par::shared_pool;
use crate::session::SessionConfig;
use cluster::config::{ClusterConfig, Topology};
use tpcw::mix::Workload;

/// The Figure 4 matrix and improvement table.
#[derive(Debug, Clone)]
pub struct Fig4Result {
    /// `wips[c][w]`: config tuned for workload `c` run under workload `w`
    /// (indices follow [`Workload::ALL`]).
    pub wips: [[f64; 3]; 3],
    /// Default-config WIPS per workload.
    pub default_wips: [f64; 3],
    /// Diagonal improvement vs default per workload (the figure's table).
    pub improvement: [f64; 3],
}

impl Fig4Result {
    /// Does each workload's own configuration win its column?
    pub fn diagonal_dominates(&self) -> bool {
        (0..3).all(|w| (0..3).all(|c| self.wips[w][w] >= self.wips[c][w] - 1e-9))
    }
}

/// Evaluate the cross-workload matrix given the three tuned configs.
///
/// `configs[i]` is the best configuration found when tuning for
/// `Workload::ALL[i]`. Each cell is the mean over `effort.reps` seeds, run
/// in parallel.
pub fn run_with_configs(configs: &[ClusterConfig; 3], effort: &Effort, seed: u64) -> Fig4Result {
    // Cells: (config index, workload index) plus defaults (3, workload).
    let mut cells: Vec<(usize, usize)> = Vec::new();
    for c in 0..4 {
        for w in 0..3 {
            cells.push((c, w));
        }
    }
    let reps = effort.reps.max(1);
    // Whole cells are the unit of parallelism: each schedules onto the
    // shared worker pool alongside replications and speculative prefetch,
    // and results merge back in cell order regardless of worker count.
    let tuned = configs.clone();
    let effort = *effort;
    let results = shared_pool().run_batch(cells.clone(), 0, move |&(c, w)| {
        let workload = Workload::ALL[w];
        let cfg = SessionConfig::new(
            Topology::single(),
            workload,
            population_for(workload, &effort),
        )
        .plan(effort.plan)
        .base_seed(seed ^ ((c as u64) << 32) ^ w as u64);
        let config = if c < 3 {
            tuned[c].clone()
        } else {
            ClusterConfig::defaults(&cfg.topology)
        };
        let mut total = 0.0;
        for r in 0..reps {
            total += cfg.evaluate(config.clone(), r).metrics.wips;
        }
        total / reps as f64
    });
    let mut wips = [[0.0; 3]; 3];
    let mut default_wips = [0.0; 3];
    for (&(c, w), v) in cells.iter().zip(&results) {
        if c < 3 {
            wips[c][w] = *v;
        } else {
            default_wips[w] = *v;
        }
    }
    let mut improvement = [0.0; 3];
    for w in 0..3 {
        improvement[w] = wips[w][w] / default_wips[w] - 1.0;
    }
    Fig4Result {
        wips,
        default_wips,
        improvement,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_fills_and_default_is_positive() {
        let effort = Effort::smoke();
        let t = Topology::single();
        let configs = [
            ClusterConfig::defaults(&t),
            ClusterConfig::defaults(&t),
            ClusterConfig::defaults(&t),
        ];
        let r = run_with_configs(&configs, &effort, 3);
        for w in 0..3 {
            assert!(r.default_wips[w] > 0.0);
            for c in 0..3 {
                assert!(r.wips[c][w] > 0.0);
            }
            // All configs are the default here, so improvements ~0.
            assert!(r.improvement[w].abs() < 0.25, "{:?}", r.improvement);
        }
    }
}
