//! EXP-DETECT: the failure detector scored against ground truth.
//!
//! Not a paper artifact — the paper's testbed reports failures out of
//! band — but the question PR 8 makes answerable: when reconfiguration
//! is gated on *observed* membership (heartbeats → φ-accrual →
//! hysteresis) instead of the injector oracle, what does detection cost?
//!
//! Two parts:
//!
//! 1. **φ-threshold sweep** — every plan in the chaos library (plus a
//!    clean control) runs a detector-mode resilient session at each
//!    φ threshold. Per cell: true/false `Down` confirmations, mean
//!    detection latency, and hard crashes the detector missed inside the
//!    detection horizon. Low thresholds detect fast but false-positive
//!    on stalls and jitter; high thresholds are safe but slow — the
//!    sweep maps that tradeoff empirically.
//! 2. **Oracle vs detector recovery** — the crash-storm plan runs once
//!    with oracle-gated reconfiguration and once detector-gated, same
//!    seeds. The contract: at default thresholds the detector recovers
//!    the WIPS dip within one extra iteration of the oracle.

use super::{scale_pop, Effort};
use crate::experiments::chaos;
use crate::par::parallel_map;
use crate::resilient::{run_resilient_session, ResilienceSettings, ResilientRun};
use crate::session::{SessionConfig, SessionError};
use detect::DetectorConfig;
use faults::{library, FaultKind, FaultPlan};
use resilience::Bulkhead;
use tpcw::mix::Workload;

/// The φ thresholds the sweep visits (the middle one is the default).
pub const PHI_THRESHOLDS: [f64; 5] = [4.0, 6.0, 8.0, 12.0, 16.0];

/// Seconds after a crash within which a detection must land to count —
/// generous against the default cadence (1 s beats, 3 confirmations).
pub const DETECTION_HORIZON_S: f64 = 15.0;

/// One φ-threshold × plan cell of the sweep.
#[derive(Debug, Clone)]
pub struct DetectCell {
    pub phi_threshold: f64,
    pub plan: &'static str,
    /// `Down` confirmations of genuinely crashed nodes.
    pub true_positives: usize,
    /// `Down` confirmations the ground truth contradicts.
    pub false_positives: usize,
    /// Hard crashes (node stayed down through the horizon) with no
    /// `Down` confirmation inside the horizon.
    pub missed_crashes: usize,
    /// Mean crash → confirmation latency over the true positives
    /// (`-1.0`: none scored).
    pub mean_latency_s: f64,
    pub reconfigs: usize,
    pub best_wips: f64,
}

/// Crash-storm recovery, oracle-gated vs detector-gated.
#[derive(Debug, Clone)]
pub struct RecoveryComparison {
    /// Iterations after the first crash until WIPS regained the recovery
    /// fraction of the pre-crash best (`None`: never within the run).
    pub oracle_recovery: Option<u32>,
    pub detector_recovery: Option<u32>,
    pub oracle_best_wips: f64,
    pub detector_best_wips: f64,
    pub oracle_reconfigs: usize,
    pub detector_reconfigs: usize,
}

impl RecoveryComparison {
    /// Extra dip iterations detection cost over the oracle (0 when both
    /// recovered equally or neither did; `i64::MAX` when only the
    /// detector failed to recover).
    pub fn detector_extra_iterations(&self) -> i64 {
        match (self.oracle_recovery, self.detector_recovery) {
            (Some(o), Some(d)) => d as i64 - o as i64,
            (Some(_), None) => i64::MAX,
            _ => 0,
        }
    }
}

/// The sweep plus the recovery comparison, in deterministic order.
#[derive(Debug, Clone)]
pub struct DetectResult {
    pub cells: Vec<DetectCell>,
    pub thresholds: Vec<f64>,
    pub plans: Vec<&'static str>,
    pub comparison: RecoveryComparison,
}

impl DetectResult {
    pub fn cell(&self, phi_threshold: f64, plan: &str) -> Option<&DetectCell> {
        self.cells
            .iter()
            .find(|c| c.phi_threshold == phi_threshold && c.plan == plan)
    }

    /// Cells at the default φ threshold.
    pub fn default_cells(&self) -> Vec<&DetectCell> {
        let default = DetectorConfig::default().phi_threshold;
        self.cells
            .iter()
            .filter(|c| c.phi_threshold == default)
            .collect()
    }

    /// The gate CI enforces: at default thresholds, no hard crash goes
    /// undetected, the clean plan never false-positives, and recovery
    /// costs at most one extra dip iteration over the oracle.
    pub fn conformant(&self) -> bool {
        self.default_cells()
            .iter()
            .all(|c| c.missed_crashes == 0 && (c.plan != "clean" || c.false_positives == 0))
            && self.comparison.detector_extra_iterations() <= 1
    }

    /// Render the sweep as CSV (one row per cell).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "phi_threshold,plan,true_positives,false_positives,missed_crashes,\
             mean_latency_s,reconfigs,best_wips\n",
        );
        for c in &self.cells {
            out.push_str(&format!(
                "{},{},{},{},{},{:.3},{},{:.3}\n",
                c.phi_threshold,
                c.plan,
                c.true_positives,
                c.false_positives,
                c.missed_crashes,
                c.mean_latency_s,
                c.reconfigs,
                c.best_wips
            ));
        }
        out
    }
}

/// The chaos-hardened policy profile with the detector on at `phi`.
pub fn settings(effort: &Effort, phi_threshold: f64) -> ResilienceSettings {
    ResilienceSettings {
        detector: Some(DetectorConfig {
            phi_threshold,
            ..DetectorConfig::default()
        }),
        ..chaos::settings(effort)
    }
}

/// Hard crashes the detector failed to confirm inside the horizon. A
/// crash only counts as "hard" if the node stayed down through the whole
/// horizon and the horizon fits inside the observed span.
fn missed_hard_crashes(run: &ResilientRun, horizon_s: f64, span_s: f64) -> usize {
    run.faults
        .iter()
        .filter(|(_, e)| matches!(e.kind, FaultKind::Crash))
        .filter(|(_, e)| {
            let Some(node) = e.node else { return false };
            let at = e.at.as_secs_f64();
            if at + horizon_s > span_s {
                return false;
            }
            let restarted_inside = run.faults.iter().any(|(_, r)| {
                matches!(r.kind, FaultKind::Restart)
                    && r.node == Some(node)
                    && r.at.as_secs_f64() > at
                    && r.at.as_secs_f64() <= at + horizon_s
            });
            if restarted_inside {
                return false;
            }
            !run.detections
                .iter()
                .any(|d| d.node == node && d.is_down() && d.at_s >= at && d.at_s <= at + horizon_s)
        })
        .count()
}

/// Run the sweep and the oracle-vs-detector comparison.
pub fn run(effort: &Effort, seed: u64) -> Result<DetectResult, SessionError> {
    let topology = chaos::topology();
    let window_s = effort.plan.total().as_secs_f64();
    let span_s = window_s * effort.iterations as f64;

    let mut plans: Vec<(&'static str, FaultPlan)> = vec![("clean", FaultPlan::new())];
    plans.extend(
        library::all(window_s, topology.len())
            .into_iter()
            .map(|c| (c.name, c.plan)),
    );
    let plan_names: Vec<&'static str> = plans.iter().map(|&(n, _)| n).collect();

    let cfg_for = |plan: &FaultPlan| {
        let cfg = SessionConfig::new(topology.clone(), Workload::Shopping, scale_pop(600, effort))
            .plan(effort.plan)
            .base_seed(seed);
        if plan.is_empty() {
            cfg
        } else {
            cfg.fault_plan(plan.clone())
        }
    };

    let grid: Vec<(f64, &(&'static str, FaultPlan))> = PHI_THRESHOLDS
        .iter()
        .flat_map(|&phi| plans.iter().map(move |p| (phi, p)))
        .collect();
    let threads = Bulkhead::new(chaos::settings(effort).bulkhead).clamp_threads(0);
    let outs = parallel_map(&grid, threads, |&(phi, &(name, ref plan))| {
        run_resilient_session(&cfg_for(plan), &settings(effort, phi), effort.iterations).map(
            |run| DetectCell {
                phi_threshold: phi,
                plan: name,
                true_positives: run
                    .detections
                    .iter()
                    .filter(|d| d.is_down() && d.truth_crashed)
                    .count(),
                false_positives: run.detection_false_positives(),
                missed_crashes: missed_hard_crashes(&run, DETECTION_HORIZON_S, span_s),
                mean_latency_s: run.mean_detection_latency_s().unwrap_or(-1.0),
                reconfigs: run.reconfigs.len(),
                best_wips: run.best_wips,
            },
        )
    });
    let cells = outs.into_iter().collect::<Result<Vec<_>, _>>()?;

    // Oracle vs detector on the crash-storm plan, identical seeds. The
    // recovery fraction is deliberately modest: the storm keeps wounding
    // the cluster, so full recovery inside the run is not guaranteed.
    let storm = library::crash_storm(window_s, topology.len());
    let oracle = run_resilient_session(
        &cfg_for(&storm),
        &chaos::settings(effort),
        effort.iterations,
    )?;
    let default_phi = DetectorConfig::default().phi_threshold;
    let detector = run_resilient_session(
        &cfg_for(&storm),
        &settings(effort, default_phi),
        effort.iterations,
    )?;
    let frac = 0.5;
    let comparison = RecoveryComparison {
        oracle_recovery: oracle.recovery_iterations(frac),
        detector_recovery: detector.recovery_iterations(frac),
        oracle_best_wips: oracle.best_wips,
        detector_best_wips: detector.best_wips,
        oracle_reconfigs: oracle.reconfigs.len(),
        detector_reconfigs: detector.reconfigs.len(),
    };

    Ok(DetectResult {
        cells,
        thresholds: PHI_THRESHOLDS.to_vec(),
        plans: plan_names,
        comparison,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_is_conformant_at_defaults() {
        let effort = Effort::smoke();
        let r = run(&effort, 11).expect("sweep");
        assert_eq!(r.cells.len(), PHI_THRESHOLDS.len() * r.plans.len());
        assert!(
            r.conformant(),
            "{:?} / {:?}",
            r.default_cells(),
            r.comparison
        );
        // The clean control never detects anything at any threshold at
        // or above the default.
        let default = DetectorConfig::default().phi_threshold;
        for c in r.cells.iter().filter(|c| c.plan == "clean") {
            if c.phi_threshold >= default {
                assert_eq!(c.false_positives, 0, "{c:?}");
                assert_eq!(c.true_positives, 0, "{c:?}");
            }
        }
        // Crash plans are detected at the default threshold, promptly.
        let storm = r.cell(default, "crash-storm").expect("cell");
        assert!(storm.true_positives > 0, "{storm:?}");
        assert!(
            storm.mean_latency_s > 0.0 && storm.mean_latency_s < DETECTION_HORIZON_S,
            "{storm:?}"
        );
    }

    #[test]
    fn lower_thresholds_never_detect_later() {
        let effort = Effort::smoke();
        let r = run(&effort, 7).expect("sweep");
        // Latency is monotone (not strictly) in the threshold wherever
        // both thresholds scored a true positive.
        let lat = |phi: f64| {
            r.cell(phi, "crash-storm")
                .filter(|c| c.true_positives > 0)
                .map(|c| c.mean_latency_s)
        };
        let pairs: Vec<f64> = PHI_THRESHOLDS.iter().filter_map(|&p| lat(p)).collect();
        for w in pairs.windows(2) {
            assert!(
                w[0] <= w[1] + 1e-9,
                "a stricter threshold cannot confirm earlier: {pairs:?}"
            );
        }
    }

    #[test]
    fn sweep_is_deterministic() {
        let effort = Effort::smoke();
        let a = run(&effort, 5).expect("a");
        let b = run(&effort, 5).expect("b");
        let key = |r: &DetectResult| -> Vec<(usize, usize, u64)> {
            r.cells
                .iter()
                .map(|c| (c.true_positives, c.false_positives, c.best_wips.to_bits()))
                .collect()
        };
        assert_eq!(key(&a), key(&b));
        assert_eq!(
            a.comparison.detector_recovery,
            b.comparison.detector_recovery
        );
    }

    #[test]
    fn csv_has_one_row_per_cell() {
        let effort = Effort::smoke();
        let r = run(&effort, 3).expect("sweep");
        let csv = r.to_csv();
        assert_eq!(csv.lines().count(), 1 + r.cells.len());
        assert!(csv.starts_with("phi_threshold,plan,"));
    }
}
