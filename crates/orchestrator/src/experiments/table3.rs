//! Table 3: tuned parameter values per workload.
//!
//! Renders the default configuration next to each workload's best-found
//! configuration, in the paper's row order, plus directional checks (the
//! qualitative claims the paper draws from the table).

use cluster::config::{ClusterConfig, Topology};
use cluster::params::{DB_TUNABLES, PROXY_TUNABLES, WEB_TUNABLES};

/// One Table 3 row: a parameter and its values per column.
#[derive(Debug, Clone)]
pub struct Table3Row {
    pub section: &'static str,
    pub name: &'static str,
    pub default: i64,
    /// Values in [`tpcw::mix::Workload::ALL`] order.
    pub tuned: [i64; 3],
}

/// Build Table 3 from the three tuned configurations (single topology:
/// node 0 proxy, node 1 app, node 2 db).
// The single topology fixes node roles, so the as_* accessors cannot miss.
#[allow(clippy::unwrap_used)]
pub fn build(configs: &[ClusterConfig; 3]) -> Vec<Table3Row> {
    let t = Topology::single();
    debug_assert!(configs.iter().all(|c| c.len() == t.len()));
    let mut rows = Vec::with_capacity(23);
    for (i, def) in PROXY_TUNABLES.iter().enumerate() {
        rows.push(Table3Row {
            section: "Proxy Server",
            name: def.name,
            default: def.default,
            tuned: [
                configs[0].node(0).as_proxy().unwrap().to_values()[i],
                configs[1].node(0).as_proxy().unwrap().to_values()[i],
                configs[2].node(0).as_proxy().unwrap().to_values()[i],
            ],
        });
    }
    for (i, def) in WEB_TUNABLES.iter().enumerate() {
        rows.push(Table3Row {
            section: "Web Server",
            name: def.name,
            default: def.default,
            tuned: [
                configs[0].node(1).as_app().unwrap().to_values()[i],
                configs[1].node(1).as_app().unwrap().to_values()[i],
                configs[2].node(1).as_app().unwrap().to_values()[i],
            ],
        });
    }
    for (i, def) in DB_TUNABLES.iter().enumerate() {
        rows.push(Table3Row {
            section: "Database Server",
            name: def.name,
            default: def.default,
            tuned: [
                configs[0].node(2).as_db().unwrap().to_values()[i],
                configs[1].node(2).as_db().unwrap().to_values()[i],
                configs[2].node(2).as_db().unwrap().to_values()[i],
            ],
        });
    }
    rows
}

/// The paper's qualitative reading of Table 3, checked against our tuned
/// values. Each check is `(claim, holds)`.
pub fn directional_checks(rows: &[Table3Row]) -> Vec<(String, bool)> {
    let get = |name: &str| -> &Table3Row {
        rows.iter()
            .find(|r| r.name == name)
            .unwrap_or_else(|| panic!("row {name} missing"))
    };
    let mut checks = Vec::new();

    let cache_mem = get("cache_mem");
    checks.push((
        "proxy raises cache_mem above the default for every workload".into(),
        cache_mem.tuned.iter().all(|&v| v >= cache_mem.default),
    ));

    let maxp = get("maxProcessors");
    checks.push((
        "ordering grows the HTTP processor pool beyond the default".into(),
        maxp.tuned[2] > maxp.default,
    ));

    let accept = get("acceptCount");
    checks.push((
        "ordering grows the accept queue beyond the default".into(),
        accept.tuned[2] > accept.default,
    ));

    let binlog = get("binlog_cache_size");
    checks.push((
        "binlog cache grows with write intensity (ordering largest)".into(),
        binlog.tuned[2] >= binlog.tuned[0] && binlog.tuned[2] > binlog.default,
    ));

    let join = get("join_buffer_size");
    checks.push((
        // The paper's stronger claim — shrinking to ~400 KB costs nothing —
        // is verified by direct A/B evaluation in tests/paper_shapes.rs;
        // here we check the tuner found no reason to grow it.
        "join buffer does not grow beyond the 8 MB default".into(),
        join.tuned
            .iter()
            .all(|&v| v <= (join.default as f64 * 1.05) as i64),
    ));

    let table_cache = get("table_cache");
    checks.push((
        "ordering (the DB-heavy mix) grows the table cache well beyond 64".into(),
        table_cache.tuned[2] > 4 * table_cache.default,
    ));

    checks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_23_rows_in_paper_order() {
        let t = Topology::single();
        let configs = [
            ClusterConfig::defaults(&t),
            ClusterConfig::defaults(&t),
            ClusterConfig::defaults(&t),
        ];
        let rows = build(&configs);
        assert_eq!(rows.len(), 23);
        assert_eq!(rows[0].name, "cache_mem");
        assert_eq!(rows[0].section, "Proxy Server");
        assert_eq!(rows[7].name, "minProcessors");
        assert_eq!(rows[14].name, "binlog_cache_size");
        // Defaults everywhere: tuned == default.
        for r in &rows {
            assert_eq!(r.tuned, [r.default; 3]);
        }
    }

    #[test]
    fn directional_checks_run_on_defaults() {
        let t = Topology::single();
        let configs = [
            ClusterConfig::defaults(&t),
            ClusterConfig::defaults(&t),
            ClusterConfig::defaults(&t),
        ];
        let rows = build(&configs);
        let checks = directional_checks(&rows);
        assert_eq!(checks.len(), 6);
        // With untuned configs the "does not grow" claims hold trivially.
        assert!(checks.iter().any(|(_, holds)| *holds));
        // With untuned configs most claims fail — they must at least not
        // panic and be well-formed.
        for (claim, _) in &checks {
            assert!(!claim.is_empty());
        }
    }
}
