//! Table 4: cluster tuning methods compared.
//!
//! Four rows — no tuning, default method (one server, every parameter),
//! parameter duplication, parameter partitioning — on a two-nodes-per-tier
//! cluster. Reported per method: best-config WIPS, the standard deviation
//! over the second half of the run (tuning stability), improvement over
//! the untuned baseline, and iterations to reach the best configuration.

use super::{table4_population, Effort};
use crate::par::shared_pool;
use crate::session::{tune, SessionConfig};
use cluster::config::Topology;
use harmony::strategy::TuningMethod;
use tpcw::mix::Workload;

/// One Table 4 row.
#[derive(Debug, Clone)]
pub struct Table4Row {
    pub method: TuningMethod,
    /// Performance of the best configuration found.
    pub best_wips: f64,
    /// Std-dev of per-iteration WIPS over the second half of the run.
    pub stability_std: f64,
    /// Improvement of `best_wips` over the untuned baseline.
    pub improvement: f64,
    /// First iteration reaching 99% of the run's best WIPS.
    pub iterations_to_converge: u32,
}

/// The whole table.
#[derive(Debug, Clone)]
pub struct Table4Result {
    pub baseline_wips: f64,
    pub baseline_std: f64,
    pub rows: Vec<Table4Row>,
}

/// Which methods to include (the paper's four; add Hybrid for the
/// future-work ablation).
pub fn paper_methods() -> Vec<TuningMethod> {
    vec![
        TuningMethod::Default,
        TuningMethod::Duplication,
        TuningMethod::Partitioning,
    ]
}

/// Run Table 4 on the given methods (in parallel — each method's tuning
/// run is independent).
pub fn run(methods: &[TuningMethod], effort: &Effort, seed: u64) -> Table4Result {
    // Tier counts are literals; `tiers` only fails on a zero count.
    #[allow(clippy::expect_used)]
    let topology = Topology::tiers(2, 2, 2).expect("valid topology");
    let base = SessionConfig::new(topology, Workload::Shopping, table4_population(effort))
        .plan(effort.plan)
        .base_seed(seed);

    let (baseline_wips, baseline_std) = base.measure_default(effort.reps.max(2));

    // Each method's tuning run is one pool job; rows come back in method
    // order whatever the worker count.
    let session = base.clone();
    let effort = *effort;
    let rows = shared_pool().run_batch(methods.to_vec(), 0, move |&method| {
        // Decorrelate methods' measurement noise.
        let cfg = session
            .clone()
            .base_seed(seed ^ (method as u64).wrapping_mul(0x9E37_79B9));
        let run = tune(&cfg, method, effort.iterations)
            .unwrap_or_else(|e| panic!("table 4 tuning session failed: {e}"));
        let half = (effort.iterations / 2) as usize;
        let (_, std2) = run.window_stats(half, effort.iterations as usize);
        Table4Row {
            method,
            best_wips: run.best_wips,
            stability_std: std2,
            improvement: run.best_wips / baseline_wips - 1.0,
            iterations_to_converge: run.first_within(0.99),
        }
    });

    Table4Result {
        baseline_wips,
        baseline_std,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_table_has_requested_methods() {
        let effort = Effort::smoke();
        let methods = vec![TuningMethod::Duplication, TuningMethod::Partitioning];
        let r = run(&methods, &effort, 5);
        assert!(r.baseline_wips > 0.0);
        assert_eq!(r.rows.len(), 2);
        for row in &r.rows {
            assert!(row.best_wips > 0.0);
            assert!(row.iterations_to_converge < effort.iterations);
            assert!(row.stability_std >= 0.0);
        }
    }
}
