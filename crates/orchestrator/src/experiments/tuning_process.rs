//! §III.A tuning-process experiment (the browsing/ordering tuning curves
//! and their summary statistics).
//!
//! Reproduces the paper's reported facts: for the browsing workload the
//! tuner beats the default configuration in ~78% of the second hundred
//! iterations (average improvement a few percent); for the ordering
//! workload the default is already good, ~85% of iterations beat it, and
//! the headline improvement stays small.

use super::{population_for, Effort};
use crate::session::{tune_default_method, SessionConfig, TuningRun};
use cluster::config::Topology;
use tpcw::mix::Workload;

/// Result of one workload's tuning-process run.
#[derive(Debug, Clone)]
pub struct TuningProcessResult {
    pub workload: Workload,
    /// Default-configuration WIPS (mean over replicas).
    pub default_wips: f64,
    /// Default-configuration WIPS standard deviation across replicas.
    pub default_std: f64,
    /// Per-iteration WIPS trace.
    pub wips_series: Vec<f64>,
    /// Best WIPS found and when.
    pub best_wips: f64,
    pub convergence_iteration: u32,
    /// Mean WIPS over the second half of the run.
    pub second_half_mean: f64,
    /// Std-dev over the second half.
    pub second_half_std: f64,
    /// Fraction of second-half iterations beating the default.
    pub fraction_better_than_default: f64,
    /// Mean improvement of the second half vs the default.
    pub avg_improvement: f64,
    /// Best-config improvement vs the default.
    pub best_improvement: f64,
}

/// Run the tuning process for one workload on the single-line topology.
pub fn run(workload: Workload, effort: &Effort, seed: u64) -> (TuningProcessResult, TuningRun) {
    let cfg = SessionConfig::new(
        Topology::single(),
        workload,
        population_for(workload, effort),
    )
    .plan(effort.plan)
    .base_seed(seed);
    let (default_wips, default_std) = cfg.measure_default(effort.reps);
    let run = tune_default_method(&cfg, effort.iterations)
        .unwrap_or_else(|e| panic!("tuning session failed: {e}"));

    let half = (effort.iterations / 2) as usize;
    let end = effort.iterations as usize;
    let (mean2, std2) = run.window_stats(half, end);
    let frac = run.fraction_above(half, end, default_wips);
    let result = TuningProcessResult {
        workload,
        default_wips,
        default_std,
        wips_series: run.wips_series(),
        best_wips: run.best_wips,
        convergence_iteration: run.convergence_iteration,
        second_half_mean: mean2,
        second_half_std: std2,
        fraction_better_than_default: frac,
        avg_improvement: mean2 / default_wips - 1.0,
        best_improvement: run.best_wips / default_wips - 1.0,
    };
    (result, run)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_consistent_summary() {
        let effort = Effort::smoke();
        let (r, run) = run(Workload::Browsing, &effort, 11);
        assert_eq!(r.wips_series.len(), effort.iterations as usize);
        assert_eq!(run.records.len(), effort.iterations as usize);
        assert!(r.default_wips > 0.0);
        assert!(r.best_wips >= r.second_half_mean - 1e-9 || r.best_wips > 0.0);
        assert!((0.0..=1.0).contains(&r.fraction_better_than_default));
        assert!(r.best_improvement >= r.avg_improvement - 1.0); // sanity
    }
}
