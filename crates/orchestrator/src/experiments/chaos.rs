//! EXP-CHAOS: the chaos conformance matrix.
//!
//! Not a paper artifact — the paper tunes a healthy testbed — but the
//! operational question its §V leaves open: does the tuner *survive* a
//! hostile cluster? Every registered tuning algorithm runs against every
//! plan in the chaos library ([`faults::library`]) under the fully
//! hardened policy stack (retry ∘ timeout ∘ breaker ∘ bulkhead with
//! graceful degradation). The contract per cell: finish or degrade —
//! never panic, never hang, never report a non-finite throughput.
//!
//! The grid fans out across cores with [`parallel_map`]; the same
//! [`Bulkhead`] that caps in-flight evaluations inside the stack clamps
//! the fan-out width, so one knob governs both layers of parallelism.

use super::{scale_pop, Effort};
use crate::par::parallel_map;
use crate::resilient::{run_resilient_session, ResilienceSettings};
use crate::session::{SessionConfig, SessionError};
use cluster::config::Topology;
use resilience::Bulkhead;
use tpcw::mix::Workload;

/// One tuner × chaos-plan cell of the matrix.
#[derive(Debug, Clone)]
pub struct ChaosCell {
    pub tuner: &'static str,
    pub plan: &'static str,
    pub best_wips: f64,
    pub mean_wips: f64,
    /// Iterations that ended with a usable (valid) sample.
    pub ok_iterations: usize,
    pub iterations: usize,
    pub retries: usize,
    pub timeouts: usize,
    pub breaker_opens: usize,
    pub degraded: usize,
    pub reconfigs: usize,
}

impl ChaosCell {
    /// The conformance verdict: the session produced every record with a
    /// finite, non-negative throughput.
    pub fn conformant(&self) -> bool {
        self.iterations > 0 && self.best_wips.is_finite() && self.best_wips >= 0.0
    }
}

/// The full matrix plus its axes, in deterministic order.
#[derive(Debug, Clone)]
pub struct ChaosResult {
    pub cells: Vec<ChaosCell>,
    pub tuners: Vec<&'static str>,
    pub plans: Vec<&'static str>,
}

impl ChaosResult {
    pub fn cell(&self, tuner: &str, plan: &str) -> Option<&ChaosCell> {
        self.cells
            .iter()
            .find(|c| c.tuner == tuner && c.plan == plan)
    }

    /// Render the matrix as CSV (one row per cell).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "tuner,plan,best_wips,mean_wips,ok_iterations,iterations,\
             retries,timeouts,breaker_opens,degraded,reconfigs\n",
        );
        for c in &self.cells {
            out.push_str(&format!(
                "{},{},{:.3},{:.3},{},{},{},{},{},{},{}\n",
                c.tuner,
                c.plan,
                c.best_wips,
                c.mean_wips,
                c.ok_iterations,
                c.iterations,
                c.retries,
                c.timeouts,
                c.breaker_opens,
                c.degraded,
                c.reconfigs
            ));
        }
        out
    }
}

/// The topology the matrix runs on: one proxy, two app nodes, one
/// database node — small enough that the chaos plans genuinely hurt.
pub fn topology() -> Topology {
    // Tier counts are literals; `tiers` only fails on a zero count.
    #[allow(clippy::expect_used)]
    Topology::tiers(1, 2, 1).expect("valid topology")
}

/// The hardened policy profile the matrix runs under: every optional
/// layer live, per-attempt budget of two windows.
pub fn settings(effort: &Effort) -> ResilienceSettings {
    ResilienceSettings {
        breaker_threshold: 2,
        breaker_half_open_after: Some(2),
        timeout_s: Some(effort.plan.total().as_secs_f64() * 2.0),
        bulkhead: Some(4),
        degrade_to_best: true,
        ..Default::default()
    }
}

/// Run the matrix: every registered tuner × every chaos-library plan.
pub fn run(effort: &Effort, seed: u64) -> Result<ChaosResult, SessionError> {
    let tuners = harmony::registry::tuner_names().to_vec();
    let settings = settings(effort);
    let topology = topology();
    let plans = faults::library::all(effort.plan.total().as_secs_f64(), topology.len());
    let plan_names: Vec<&'static str> = plans.iter().map(|p| p.name).collect();

    let grid: Vec<(&'static str, &faults::ChaosPlan)> = tuners
        .iter()
        .flat_map(|&t| plans.iter().map(move |p| (t, p)))
        .collect();
    // One knob for both layers of parallelism: the stack's bulkhead cap
    // also clamps the grid fan-out (0 = one worker per core, clamped).
    let threads = Bulkhead::new(settings.bulkhead).clamp_threads(0);
    let outs = parallel_map(&grid, threads, |&(tuner, chaos)| {
        let cfg = SessionConfig::new(topology.clone(), Workload::Shopping, scale_pop(600, effort))
            .plan(effort.plan)
            .base_seed(seed)
            .tuner(tuner)
            .fault_plan(chaos.plan.clone());
        run_resilient_session(&cfg, &settings, effort.iterations).map(|run| {
            let count = |a: &str| run.recoveries.iter().filter(|r| r.action == a).count();
            let usable = run.records.iter().filter(|r| r.wips > 0.0).count();
            let mean = if run.records.is_empty() {
                0.0
            } else {
                run.records.iter().map(|r| r.wips).sum::<f64>() / run.records.len() as f64
            };
            ChaosCell {
                tuner,
                plan: chaos.name,
                best_wips: run.best_wips,
                mean_wips: mean,
                ok_iterations: usable,
                iterations: run.records.len(),
                retries: count("retry"),
                timeouts: count("timeout"),
                breaker_opens: count("breaker_open"),
                degraded: count("degraded"),
                reconfigs: run.reconfigs.len(),
            }
        })
    });
    let cells = outs.into_iter().collect::<Result<Vec<_>, _>>()?;
    Ok(ChaosResult {
        cells,
        tuners,
        plans: plan_names,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_matrix_is_fully_conformant() {
        let effort = Effort::smoke();
        let r = run(&effort, 11).expect("matrix");
        assert_eq!(r.cells.len(), r.tuners.len() * r.plans.len());
        for c in &r.cells {
            assert!(c.conformant(), "{c:?}");
            assert_eq!(c.iterations, effort.iterations as usize, "{c:?}");
        }
        // The library's storms must actually exercise the stack somewhere
        // in the matrix — a chaos suite that never triggers a policy is
        // not testing anything.
        assert!(r.cells.iter().any(|c| c.retries > 0), "no retries at all");
        assert!(
            r.cells
                .iter()
                .any(|c| c.degraded > 0 || c.breaker_opens > 0),
            "no degradation or breaker trips at all"
        );
    }

    #[test]
    fn matrix_is_deterministic() {
        let effort = Effort::smoke();
        let a = run(&effort, 5).expect("a");
        let b = run(&effort, 5).expect("b");
        let key = |r: &ChaosResult| -> Vec<(u64, usize, usize)> {
            r.cells
                .iter()
                .map(|c| (c.best_wips.to_bits(), c.retries, c.degraded))
                .collect()
        };
        assert_eq!(key(&a), key(&b));
    }

    #[test]
    fn csv_has_one_row_per_cell() {
        let effort = Effort::smoke();
        let r = run(&effort, 3).expect("matrix");
        let csv = r.to_csv();
        assert_eq!(csv.lines().count(), 1 + r.cells.len());
        assert!(csv.starts_with("tuner,plan,"));
    }
}
