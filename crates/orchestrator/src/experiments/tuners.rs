//! EXP-TUNERS: cross-tuner, cross-workload comparison of the tuner zoo.
//!
//! Not a paper artifact — the paper fixes the Nelder–Mead simplex — but
//! the natural follow-up once the `Tuner` trait hosts more than one
//! algorithm: how do BestConfig's divide-and-diverge sampling,
//! ClassyTune's comparison-based classification, and TUNA's noise-robust
//! confirmation protocol stack up against the paper's simplex on the
//! same workloads? Two probes per (tuner, workload) cell:
//!
//! 1. a **clean** tuning session (best WIPS, improvement over the
//!    default configuration, iterations until within 1% of best);
//! 2. the same session under a periodic measurement-noise fault plan
//!    (stability: second-half coefficient of variation).
//!
//! The **noise duel** then isolates the trait-v2 payoff: each tuner runs
//! ask/tell against spiked measurements, reports the configuration *it*
//! believes is best, and that configuration is re-measured fault-free.
//! A tuner fooled by a 4× noise spike (the simplex keeps the raw maximum
//! it observed) overstates its best; TUNA's CI-weighted median estimate
//! discards the spike, so its reported best survives clean
//! re-measurement. `regression` is that overstatement, relative.

use super::{population_for, Effort};
use crate::binding;
use crate::session::{tune, tuner_seed, SessionConfig, SessionError};
use cluster::config::Topology;
use faults::FaultPlan;
use harmony::strategy::TuningMethod;
use tpcw::mix::Workload;

/// The tuners this experiment compares (all speak the full ask/tell v2
/// protocol and persist through the checkpoint path).
pub const ZOO: [&str; 4] = ["simplex", "bestconfig", "classytune", "tuna"];

/// The workloads each tuner runs against.
pub const WORKLOADS: [Workload; 2] = [Workload::Browsing, Workload::Shopping];

/// One (tuner, workload) cell of the comparison table.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    pub tuner: &'static str,
    pub workload: Workload,
    /// Default-configuration WIPS (the shared baseline for the column).
    pub default_wips: f64,
    /// Best WIPS found in the clean session.
    pub best_wips: f64,
    /// `best_wips / default_wips - 1`.
    pub improvement: f64,
    /// First iteration within 1% of the session best.
    pub iterations_to_best: u32,
    /// Second-half WIPS standard deviation of the clean session.
    pub second_half_sd: f64,
    /// Second-half coefficient of variation under the periodic noise
    /// fault plan — the "stability under faults" column.
    pub faulted_cv: f64,
}

/// One tuner's outcome in the noise duel.
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseOutcome {
    pub tuner: &'static str,
    /// The performance the tuner *claims* for its best configuration
    /// (its own `best()` — whatever its internal estimate kept).
    pub reported_best: f64,
    /// Fault-free re-measurement of that configuration.
    pub clean_wips: f64,
    /// Relative overstatement: `max(0, reported/clean - 1)`.
    pub regression: f64,
}

/// Result of the cross-tuner experiment.
#[derive(Debug, Clone)]
pub struct TunersResult {
    pub iterations: u32,
    pub cells: Vec<Cell>,
    pub noise: Vec<NoiseOutcome>,
}

impl TunersResult {
    /// The duel outcome for one tuner, when it ran.
    pub fn noise_for(&self, tuner: &str) -> Option<&NoiseOutcome> {
        self.noise.iter().find(|n| n.tuner == tuner)
    }
}

/// A 4× measurement-noise spike in every third iteration window,
/// starting at window 1 — frequent enough that every tuner's search
/// crosses several spiked measurements.
pub fn noise_plan(effort: &Effort) -> FaultPlan {
    let window = effort.plan.total().as_secs_f64();
    let mut plan = FaultPlan::new();
    let mut w = 1u32;
    while w < effort.iterations {
        plan = plan.noise_spike(
            w as f64 * window + effort.plan.warmup.as_secs_f64() + 1.0,
            4.0,
        );
        w += 3;
    }
    plan
}

fn session(effort: &Effort, seed: u64, workload: Workload, tuner: &str) -> SessionConfig {
    SessionConfig::new(
        Topology::single(),
        workload,
        population_for(workload, effort),
    )
    .plan(effort.plan)
    .base_seed(seed)
    .tuner(tuner)
}

fn cell(
    effort: &Effort,
    seed: u64,
    workload: Workload,
    tuner: &'static str,
) -> Result<Cell, SessionError> {
    let clean_cfg = session(effort, seed, workload, tuner);
    let (default_wips, _) = clean_cfg.measure_default(effort.reps);
    let clean = tune(&clean_cfg, TuningMethod::Default, effort.iterations)?;

    let noisy_cfg = clean_cfg.clone().fault_plan(noise_plan(effort));
    let noisy = tune(&noisy_cfg, TuningMethod::Default, effort.iterations)?;
    let half = effort.iterations as usize / 2;
    let (_, second_half_sd) = clean.window_stats(half, effort.iterations as usize);
    let (noisy_mean, noisy_sd) = noisy.window_stats(half, effort.iterations as usize);

    Ok(Cell {
        tuner,
        workload,
        default_wips,
        best_wips: clean.best_wips,
        improvement: clean.best_wips / default_wips - 1.0,
        iterations_to_best: clean.first_within(0.99),
        second_half_sd,
        faulted_cv: if noisy_mean > 0.0 {
            noisy_sd / noisy_mean
        } else {
            0.0
        },
    })
}

/// Run the noise duel: every zoo tuner drives its own ask/tell loop
/// against spiked measurements, then its claimed best configuration is
/// re-measured without faults.
pub fn noise_duel(effort: &Effort, seed: u64) -> Result<Vec<NoiseOutcome>, SessionError> {
    let workload = Workload::Shopping;
    let clean = SessionConfig::new(
        Topology::single(),
        workload,
        population_for(workload, effort),
    )
    .plan(effort.plan)
    .base_seed(seed);
    let noisy = clean.clone().fault_plan(noise_plan(effort));

    ZOO.iter()
        .map(|&name| {
            let space = binding::full_space(&noisy.topology);
            let mut tuner = harmony::registry::make_tuner(name, space, tuner_seed(&noisy, 0))
                .map_err(|e| SessionError::UnknownTuner(e.to_string()))?;
            for i in 0..effort.iterations {
                let proposal = tuner.propose();
                let config = binding::config_from_full(&noisy.topology, &proposal);
                let out = noisy.evaluate(config, i);
                let m = noisy.measurement_from(out.metrics.wips, out.metrics.completed);
                tuner.observe_measurement(m);
            }
            let (best, reported_best) = tuner
                .best()
                .map(|(c, p)| (c.clone(), p))
                .ok_or_else(|| SessionError::UnknownTuner(format!("{name} reported no best")))?;
            let best_cluster = binding::config_from_full(&noisy.topology, &best);
            let ci = clean.measure_until_precise(&best_cluster, 0.02, effort.reps.max(2));
            let clean_wips = ci.mean;
            let regression = if clean_wips > 0.0 {
                (reported_best / clean_wips - 1.0).max(0.0)
            } else {
                0.0
            };
            Ok(NoiseOutcome {
                tuner: name,
                reported_best,
                clean_wips,
                regression,
            })
        })
        .collect()
}

/// Run the full experiment: the 4×2 comparison table plus the duel.
pub fn run(effort: &Effort, seed: u64) -> Result<TunersResult, SessionError> {
    let mut cells = Vec::new();
    for workload in WORKLOADS {
        for tuner in ZOO {
            cells.push(cell(effort, seed, workload, tuner)?);
        }
    }
    Ok(TunersResult {
        iterations: effort.iterations,
        cells,
        noise: noise_duel(effort, seed)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_cross_table_covers_the_zoo() {
        let effort = Effort::smoke();
        let r = run(&effort, 42).expect("experiment");
        assert_eq!(r.cells.len(), ZOO.len() * WORKLOADS.len());
        for workload in WORKLOADS {
            for tuner in ZOO {
                let c = r
                    .cells
                    .iter()
                    .find(|c| c.tuner == tuner && c.workload == workload)
                    .expect("every (tuner, workload) cell present");
                assert!(c.default_wips > 0.0, "{tuner}/{workload}");
                assert!(c.best_wips > 0.0, "{tuner}/{workload}");
                assert!(
                    c.iterations_to_best < effort.iterations,
                    "{tuner}/{workload}"
                );
                assert!(c.second_half_sd >= 0.0 && c.faulted_cv >= 0.0);
            }
        }
        assert_eq!(r.noise.len(), ZOO.len());
    }

    /// The acceptance bar of the tuner-zoo PR: under injected WIPS noise
    /// the simplex keeps the raw spiked maximum as its best, while
    /// TUNA's confirmation-median estimate survives fault-free
    /// re-measurement — its regression is strictly smaller.
    #[test]
    fn tuna_shrugs_off_noise_that_fools_simplex() {
        let effort = Effort::smoke();
        let noise = noise_duel(&effort, 42).expect("duel");
        let simplex = noise
            .iter()
            .find(|n| n.tuner == "simplex")
            .expect("simplex");
        let tuna = noise.iter().find(|n| n.tuner == "tuna").expect("tuna");
        assert!(
            simplex.regression > 0.05,
            "the spiked plan must actually fool the simplex: {simplex:?}"
        );
        assert!(
            tuna.regression < simplex.regression,
            "TUNA must regress strictly less than the simplex: {tuna:?} vs {simplex:?}"
        );
    }

    #[test]
    fn experiment_is_deterministic() {
        let effort = Effort::smoke();
        let a = run(&effort, 7).expect("run a");
        let b = run(&effort, 7).expect("run b");
        for (ca, cb) in a.cells.iter().zip(&b.cells) {
            assert_eq!(ca, cb);
        }
        assert_eq!(a.noise, b.noise);
    }
}
