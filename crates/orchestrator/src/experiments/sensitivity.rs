//! Parameter sensitivity analysis.
//!
//! §III.A: "the Active Harmony tuning process is also helpful for system
//! administrators and developers to identify those parameters that
//! actually affect system performance" — e.g. the cache-swap watermarks
//! turned out not to matter, while thread counts and buffer sizes did.
//!
//! This experiment makes that claim mechanical: one-at-a-time sweeps of
//! every Table 3 parameter to its range boundaries (all else at default),
//! reporting each parameter's throughput impact.

use super::{population_for, Effort};
use crate::binding;
use crate::par::shared_pool;
use crate::session::SessionConfig;
use cluster::config::Topology;
use tpcw::mix::Workload;

/// Sensitivity of one parameter.
#[derive(Debug, Clone)]
pub struct ParamSensitivity {
    pub name: String,
    /// WIPS with the parameter at its minimum (all else default).
    pub at_min: f64,
    /// WIPS with the parameter at its maximum.
    pub at_max: f64,
    /// Largest relative deviation from the default-config WIPS.
    pub impact: f64,
}

/// Result of the sweep for one workload.
#[derive(Debug, Clone)]
pub struct SensitivityResult {
    pub workload: Workload,
    pub default_wips: f64,
    /// Per-parameter sensitivities, sorted by impact (largest first).
    pub entries: Vec<ParamSensitivity>,
}

impl SensitivityResult {
    /// Impact of a named parameter (0 if unknown).
    pub fn impact_of(&self, name: &str) -> f64 {
        self.entries
            .iter()
            .find(|e| e.name.ends_with(name))
            .map(|e| e.impact)
            .unwrap_or(0.0)
    }
}

/// Run the one-at-a-time sweep on the single-work-line topology.
pub fn run(workload: Workload, effort: &Effort, seed: u64) -> SensitivityResult {
    let topology = Topology::single();
    // Pin the seed: sensitivity compares configurations, so measurement
    // noise between cells would masquerade as impact.
    let base = SessionConfig::new(topology.clone(), workload, population_for(workload, effort))
        .plan(effort.plan)
        .base_seed(seed)
        .pin_seed(true);

    let space = binding::full_space(&topology);
    let default_config = space.default_config();
    let default_wips = base
        .evaluate(binding::config_from_full(&topology, &default_config), 0)
        .metrics
        .wips;

    let dims: Vec<usize> = (0..space.dims()).collect();
    // One dimension = one pool job; entries land in dimension order before
    // the impact sort, so worker count never changes the result.
    let mut entries = shared_pool().run_batch(dims, 0, move |&dim| {
        let def = space.def(dim);
        let mut low = default_config.clone();
        low.set(dim, def.min);
        let mut high = default_config.clone();
        high.set(dim, def.max);
        let at_min = base
            .evaluate(binding::config_from_full(&topology, &low), 0)
            .metrics
            .wips;
        let at_max = base
            .evaluate(binding::config_from_full(&topology, &high), 0)
            .metrics
            .wips;
        let impact = ((at_min - default_wips).abs() / default_wips)
            .max((at_max - default_wips).abs() / default_wips);
        ParamSensitivity {
            name: def.name.clone(),
            at_min,
            at_max,
            impact,
        }
    });
    entries.sort_by(|a, b| b.impact.total_cmp(&a.impact));
    SensitivityResult {
        workload,
        default_wips,
        entries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_every_parameter() {
        let effort = Effort::smoke();
        let r = run(Workload::Shopping, &effort, 9);
        assert_eq!(r.entries.len(), 23);
        assert!(r.default_wips > 0.0);
        // Sorted descending.
        for pair in r.entries.windows(2) {
            assert!(pair[0].impact >= pair[1].impact);
        }
        // Impacts are finite and non-negative.
        for e in &r.entries {
            assert!(e.impact.is_finite() && e.impact >= 0.0, "{}", e.name);
        }
    }

    #[test]
    fn swap_watermarks_are_inert_even_at_smoke_scale() {
        // The paper's flagship "does not matter" parameters: pinned seed
        // makes this exact — the watermarks do not enter any service-time
        // path, so the impact is strictly zero.
        let effort = Effort::smoke();
        let r = run(Workload::Browsing, &effort, 10);
        assert_eq!(r.impact_of("cache_swap_low"), 0.0);
        assert_eq!(r.impact_of("cache_swap_high"), 0.0);
    }
}
