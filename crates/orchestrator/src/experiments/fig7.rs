//! Figure 7: automatic cluster reconfiguration experiments.
//!
//! * **(a)** four proxy + two app nodes; the workload changes from
//!   browsing to ordering at iteration `switch`, and a forced
//!   reconfiguration check right after iteration `check` moves one node
//!   from the proxy tier to the app tier. Throughput improves ~60%.
//! * **(b)** two proxy + four app nodes under a browsing workload; the
//!   proxy tier is disk/CPU-bound, and the check moves one app node into
//!   the proxy tier. Throughput improves ~70%.
//!
//! Improvements are measured as the paper does: mean WIPS after the move
//! (allowing a few re-tuning iterations) vs the mean in the window between
//! the workload switch and the check.

use super::{scale_pop, Effort};
use crate::reconfigure::{run_reconfig_session, ReconfigRun, ReconfigSettings};
use crate::session::SessionConfig;
use cluster::config::{Role, Topology};
use harmony::reconfig::Thresholds;
use tpcw::mix::Workload;

/// Which of the two Figure 7 experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fig7Variant {
    /// (a) proxy → app under a browsing→ordering switch.
    ProxyToApp,
    /// (b) app → proxy under a browsing workload.
    AppToProxy,
}

/// Result of one Figure 7 run.
#[derive(Debug, Clone)]
pub struct Fig7Result {
    pub variant: Fig7Variant,
    pub wips_series: Vec<f64>,
    /// Iteration of the (first) reconfiguration, if any.
    pub reconfig_iteration: Option<u32>,
    pub moved_node: Option<usize>,
    pub from_tier: Option<Role>,
    pub to_tier: Option<Role>,
    /// Mean WIPS in the pre-move window (after the workload switch).
    pub before_wips: f64,
    /// Mean WIPS in the post-move window.
    pub after_wips: f64,
    /// Relative improvement.
    pub improvement: f64,
    /// Initial and final tier layout, as "(p, a, d)".
    pub initial_layout: (usize, usize, usize),
    pub final_layout: (usize, usize, usize),
}

fn layout(t: &Topology) -> (usize, usize, usize) {
    (t.count(Role::Proxy), t.count(Role::App), t.count(Role::Db))
}

/// Run one Figure 7 variant.
///
/// The run is `1.5 × effort.iterations` long; the workload switch (variant
/// (a) only) happens at `0.45 ×` and the forced check at `0.5 ×` the base
/// iteration count — at `Effort::paper()` (200) this reproduces the
/// paper's switch-at-90 / check-at-100 schedule on a 300-iteration run.
pub fn run(variant: Fig7Variant, effort: &Effort, seed: u64) -> Fig7Result {
    let total = effort.iterations + effort.iterations / 2;
    let switch = (effort.iterations as f64 * 0.45) as u32;
    // Paper: workload switches at 90, forced check right after 100 — ten
    // iterations for the monitor to see the new regime.
    let check = (switch + (effort.iterations / 10).max(6)).min(total - 2);

    // Populations are set well beyond what parameter tuning alone can
    // absorb, so the tier imbalance persists until the node moves. The
    // database tier of (a) is provisioned with headroom — in the paper's
    // testbed the database was not the ordering bottleneck, the
    // application tier was.
    // Tier counts are literals; `tiers` only fails on a zero count.
    #[allow(clippy::expect_used)]
    let (topology, population) = match variant {
        Fig7Variant::ProxyToApp => (
            Topology::tiers(4, 2, 5).expect("valid"),
            scale_pop(8_500, effort),
        ),
        Fig7Variant::AppToProxy => (
            Topology::tiers(2, 4, 1).expect("valid"),
            scale_pop(4_000, effort),
        ),
    };
    let initial_layout = layout(&topology);
    let base = SessionConfig::new(topology, Workload::Browsing, population)
        .plan(effort.plan)
        .base_seed(seed);

    let settings = ReconfigSettings {
        check_every: None,
        force_check_at: Some(check),
        thresholds: Thresholds {
            high: 0.80,
            low: 0.45,
        },
        // A faster EMA than the periodic-check default: the forced check
        // comes only a few iterations after the workload switch.
        monitor_alpha: 0.5,
        // (a) keeps tuning running, as the paper does: cache tuning cools
        // the proxy tier (making it a donor) while no parameter can fix
        // the app tier's CPU shortage. (b) freezes tuning: our simulated
        // proxy cache is tunable enough to absorb that imbalance, which
        // the paper's physical testbed was not (note in EXPERIMENTS.md).
        tune_during: variant == Fig7Variant::ProxyToApp,
        ..Default::default()
    };
    let workload_at = move |i: u32| match variant {
        Fig7Variant::ProxyToApp => {
            if i < switch {
                Workload::Browsing
            } else {
                Workload::Ordering
            }
        }
        Fig7Variant::AppToProxy => Workload::Browsing,
    };
    let run: ReconfigRun = run_reconfig_session(&base, &settings, total, workload_at)
        .unwrap_or_else(|e| panic!("figure 7 session failed: {e}"));

    let event = run.events.first();
    let before_start = match variant {
        Fig7Variant::ProxyToApp => switch as usize,
        Fig7Variant::AppToProxy => (check as usize).saturating_sub(10),
    };
    let before_wips = run.mean_wips(before_start, check as usize + 1);
    // Allow a few iterations of re-tuning after the move before measuring.
    let settle = (check + 1 + total / 10).min(total - 1);
    let after_wips = run.mean_wips(settle as usize, total as usize);

    Fig7Result {
        variant,
        wips_series: run.records.iter().map(|r| r.wips).collect(),
        reconfig_iteration: event.map(|e| e.iteration),
        moved_node: event.map(|e| e.node),
        from_tier: event.map(|e| e.from_tier),
        to_tier: event.map(|e| e.to_tier),
        before_wips,
        after_wips,
        improvement: after_wips / before_wips - 1.0,
        initial_layout,
        final_layout: layout(&run.final_topology),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_variant_b_runs() {
        let effort = Effort::smoke();
        let r = run(Fig7Variant::AppToProxy, &effort, 7);
        assert_eq!(r.initial_layout, (2, 4, 1));
        assert!(!r.wips_series.is_empty());
        assert!(r.before_wips > 0.0);
        assert!(r.after_wips > 0.0);
    }
}
