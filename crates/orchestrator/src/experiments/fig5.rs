//! Figure 5: tuning responsiveness to changing workloads.
//!
//! The workload cycles Browsing → Shopping → Ordering every `period`
//! iterations while one Harmony server keeps tuning. The paper's claim:
//! only a few iterations are needed to adapt after each change.

use super::{fig5_population, Effort};
use crate::schedule::{recovery_iterations, tune_with_schedule, WorkloadSchedule};
use crate::session::SessionConfig;
use cluster::config::Topology;
use tpcw::mix::Workload;

/// Result of the responsiveness experiment.
#[derive(Debug, Clone)]
pub struct Fig5Result {
    /// Per-iteration WIPS.
    pub wips_series: Vec<f64>,
    /// Workload per iteration.
    pub workloads: Vec<Workload>,
    /// Iterations where the workload changed.
    pub change_points: Vec<u32>,
    /// For each change point: iterations until WIPS reached 90% of the
    /// segment median (`None` = never within the segment).
    pub recovery: Vec<(u32, Option<u32>)>,
}

impl Fig5Result {
    /// Mean recovery time across change points that recovered.
    pub fn mean_recovery(&self) -> Option<f64> {
        let recs: Vec<u32> = self.recovery.iter().filter_map(|(_, r)| *r).collect();
        if recs.is_empty() {
            None
        } else {
            Some(recs.iter().sum::<u32>() as f64 / recs.len() as f64)
        }
    }
}

/// Run Figure 5. The paper holds each workload for 100 iterations over a
/// 300-iteration run; we keep that proportion at every effort level by
/// using `period = effort.iterations / 2` per segment × three segments
/// (at `Effort::paper()` that is exactly 100-iteration segments).
pub fn run(effort: &Effort, seed: u64) -> Fig5Result {
    let period = (effort.iterations / 2).max(2);
    let schedule = WorkloadSchedule::cycling(period, 1); // B, S, O once each
    let cfg = SessionConfig::new(
        Topology::single(),
        Workload::Browsing,
        fig5_population(effort),
    )
    .plan(effort.plan)
    .base_seed(seed);
    let run = tune_with_schedule(&cfg, &schedule)
        .unwrap_or_else(|e| panic!("figure 5 session failed: {e}"));
    let recovery = recovery_iterations(&run, &schedule, 0.9);
    Fig5Result {
        wips_series: run.wips_series(),
        workloads: run.records.iter().map(|r| r.workload).collect(),
        change_points: schedule.change_points(),
        recovery,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_has_three_segments() {
        let effort = Effort::smoke();
        let r = run(&effort, 21);
        assert_eq!(r.change_points.len(), 2);
        assert_eq!(r.wips_series.len(), r.workloads.len());
        assert!(r.workloads.contains(&Workload::Browsing));
        assert!(r.workloads.contains(&Workload::Shopping));
        assert!(r.workloads.contains(&Workload::Ordering));
        assert_eq!(r.recovery.len(), 2);
    }
}
