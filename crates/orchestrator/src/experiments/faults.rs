//! EXP-FAULTS: resilience under deterministic fault injection.
//!
//! Not a paper artifact — the paper tunes a healthy testbed — but the
//! natural robustness follow-up: a six-node cluster runs the duplication
//! tuner while a fault plan injects a measurement-noise spike and then
//! crashes an application-tier node *mid-measurement*. The expected shape
//! is dip-and-recover: WIPS drops when the node dies, the session retries
//! the invalidated sample against the post-crash cluster, the
//! failure-driven reconfiguration pulls a spare node into the wounded
//! tier, and the tuner re-converges.

use super::{scale_pop, Effort};
use crate::reconfigure::ReconfigEvent;
use crate::resilient::{run_resilient_session_observed, ResilienceSettings, ResilientRun};
use crate::session::{SessionConfig, SessionError, SessionObserver};
use cluster::config::{Role, Topology};
use faults::FaultPlan;
use tpcw::mix::Workload;

/// Result of the fault-injection experiment.
#[derive(Debug, Clone)]
pub struct FaultsResult {
    pub wips_series: Vec<f64>,
    /// Iteration the crash landed in.
    pub crash_iteration: Option<u32>,
    /// Best WIPS before the crash.
    pub pre_crash_best: f64,
    /// Iterations from the crash until WIPS reached 90% of the pre-crash
    /// best (`None`: not within the run).
    pub recovery_iterations: Option<u32>,
    /// Resilience actions taken, by kind.
    pub retries: usize,
    pub remeasures: usize,
    pub breaker_opens: usize,
    /// Failure-driven node moves.
    pub reconfigs: Vec<ReconfigEvent>,
    pub initial_layout: (usize, usize, usize),
    pub final_layout: (usize, usize, usize),
    pub best_wips: f64,
}

fn layout(t: &Topology) -> (usize, usize, usize) {
    (t.count(Role::Proxy), t.count(Role::App), t.count(Role::Db))
}

/// The topology the experiment runs on: two proxies, three app nodes, two
/// database nodes — enough spares that losing one app node is survivable.
pub fn topology() -> Topology {
    // Tier counts are literals; `tiers` only fails on a zero count.
    #[allow(clippy::expect_used)]
    Topology::tiers(2, 3, 2).expect("valid topology")
}

/// The canonical fault plan, scaled to the effort's iteration windows:
/// a 3× noise spike early on, then node 3 (app tier) crashes in the
/// middle of iteration `0.4 × iterations`'s measurement phase.
pub fn canonical_plan(effort: &Effort) -> FaultPlan {
    let window = effort.plan.total().as_secs_f64();
    let crash_iter = (effort.iterations * 2 / 5).max(1);
    let crash_at = crash_iter as f64 * window
        + effort.plan.warmup.as_secs_f64()
        + effort.plan.measure.as_secs_f64() / 2.0;
    let noise_iter = crash_iter / 2;
    let noise_at = noise_iter as f64 * window + 1.0;
    FaultPlan::new()
        .noise_spike(noise_at, 3.0)
        .crash(crash_at, 3)
}

/// Run the experiment with the canonical plan.
pub fn run(effort: &Effort, seed: u64) -> Result<FaultsResult, SessionError> {
    run_observed(effort, seed, &mut SessionObserver::none())
}

/// [`run`] with trace/metrics observation (fault, recovery, and reconfig
/// records flow through the observer).
pub fn run_observed(
    effort: &Effort,
    seed: u64,
    observer: &mut SessionObserver,
) -> Result<FaultsResult, SessionError> {
    run_custom(effort, seed, None, None, observer)
}

/// Full-control entry point: override the fault plan (`None` → the
/// canonical plan) and the fault noise/jitter seed (`None` → the session
/// default).
pub fn run_custom(
    effort: &Effort,
    seed: u64,
    plan: Option<FaultPlan>,
    fault_seed: Option<u64>,
    observer: &mut SessionObserver,
) -> Result<FaultsResult, SessionError> {
    let topology = topology();
    let initial_layout = layout(&topology);
    let mut cfg = SessionConfig::new(topology, Workload::Shopping, scale_pop(4_200, effort))
        .plan(effort.plan)
        .base_seed(seed)
        .fault_plan(plan.unwrap_or_else(|| canonical_plan(effort)));
    if let Some(fs) = fault_seed {
        cfg = cfg.fault_seed(fs);
    }
    let run: ResilientRun = run_resilient_session_observed(
        &cfg,
        &ResilienceSettings::default(),
        effort.iterations,
        observer,
    )?;

    let count = |action: &str| run.recoveries.iter().filter(|r| r.action == action).count();
    Ok(FaultsResult {
        wips_series: run.wips_series(),
        crash_iteration: run.first_crash_iteration(),
        pre_crash_best: run
            .first_crash_iteration()
            .map(|i| run.running_best_before(i))
            .unwrap_or(0.0),
        recovery_iterations: run.recovery_iterations(0.9),
        retries: count("retry"),
        remeasures: count("remeasure"),
        breaker_opens: count("breaker_open"),
        reconfigs: run.reconfigs.clone(),
        initial_layout,
        final_layout: layout(&run.final_topology),
        best_wips: run.best_wips,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_dips_and_recovers() {
        let effort = Effort::smoke();
        let r = run(&effort, 42).expect("no panic under faults");
        assert_eq!(r.wips_series.len(), effort.iterations as usize);
        assert_eq!(r.crash_iteration, Some(4), "10 iterations * 2/5");
        assert!(r.pre_crash_best > 0.0);
        assert!(r.retries > 0, "mid-measurement crash must trigger a retry");
        // The crash pulls a spare into the app tier. The dead node keeps
        // its tier assignment (it is Down, not removed), so the tier
        // counts four nodes of which three are live.
        assert_eq!(r.reconfigs.len(), 1, "{:?}", r.reconfigs);
        assert_eq!(r.reconfigs[0].to_tier, Role::App);
        assert_eq!(r.final_layout.1, 4, "app tier back to three live nodes");
        // Acceptance: ≥90% of the pre-crash best within 10 iterations.
        let rec = r.recovery_iterations.expect("recovered");
        assert!(rec <= 10, "recovered in {rec} iterations");
    }

    #[test]
    fn experiment_is_deterministic() {
        let effort = Effort::smoke();
        let a = run(&effort, 7).expect("run a");
        let b = run(&effort, 7).expect("run b");
        assert_eq!(a.wips_series, b.wips_series);
        assert_eq!(a.recovery_iterations, b.recovery_iterations);
    }
}
