//! EXP-RESUME: kill-and-resume torture of crash-safe persistence.
//!
//! Not a paper artifact — the operational counterpart to the paper's
//! hundreds-of-iterations tuning runs (Fig. 4/5): a session that long
//! must survive the tuner process dying mid-run. The experiment runs a
//! reference session to completion, then for each of five seeded
//! interrupt points runs a checkpointed copy killed at that iteration
//! (a panicking trace sink stands in for `kill -9`: journal frames are
//! flushed per append, so the directory left behind is exactly what an
//! interrupted process leaves), resumes it from disk, and verifies the
//! spliced run is **byte-identical** to the uninterrupted one — same
//! trace records, bit-equal best WIPS.

use std::panic::AssertUnwindSafe;
use std::path::{Path, PathBuf};

use super::{scale_pop, Effort};
use crate::checkpoint::CheckpointPolicy;
use crate::session::{tune_observed, SessionConfig, SessionError, SessionObserver, TuningRun};
use cluster::config::Topology;
use harmony::strategy::TuningMethod;
use obs::{MemorySink, TraceRecord, TraceSink, Value};
use tpcw::mix::Workload;

/// What happened at one interrupt point.
#[derive(Debug, Clone)]
pub struct InterruptOutcome {
    /// Iteration the kill landed on (the first iteration lost).
    pub kill_at: u64,
    /// Snapshot the resume recovered from (0: journal-only recovery).
    pub snapshot_iteration: u64,
    /// Journal deltas replayed on top of the snapshot.
    pub replayed: u64,
    /// Pre-kill trace was a prefix of the uninterrupted trace.
    pub prefix_identical: bool,
    /// Post-resume trace matched the uninterrupted remainder exactly.
    pub tail_identical: bool,
    /// Final best WIPS was bit-equal and the record count matched.
    pub result_identical: bool,
}

impl InterruptOutcome {
    /// The acceptance bar: every comparison exact.
    pub fn exact(&self) -> bool {
        self.prefix_identical && self.tail_identical && self.result_identical
    }
}

/// Result of the kill-and-resume experiment.
#[derive(Debug, Clone)]
pub struct ResumeResult {
    pub iterations: u32,
    /// Snapshot cadence used (journal appends happen every iteration).
    pub snapshot_every: u32,
    /// Best WIPS of the uninterrupted reference run.
    pub baseline_best_wips: f64,
    pub outcomes: Vec<InterruptOutcome>,
}

impl ResumeResult {
    /// True when every interrupt point resumed byte-identically.
    pub fn all_exact(&self) -> bool {
        self.outcomes.iter().all(InterruptOutcome::exact)
    }
}

/// A sink that simulates `kill -9` at the start of iteration `kill_at`:
/// it panics on the first record carrying `iteration >= kill_at`, so the
/// journal covers exactly the iterations before the kill point.
struct KillSink {
    inner: MemorySink,
    kill_at: u64,
}

impl TraceSink for KillSink {
    fn emit(&mut self, record: &TraceRecord) {
        if let Some(Value::UInt(i)) = record.get("iteration") {
            if *i >= self.kill_at {
                panic!("simulated crash at iteration {i}");
            }
        }
        self.inner.emit(record);
    }
}

/// Run `f` expecting the simulated crash, swallowing the panic output.
fn run_killed<F: FnOnce()>(f: F) -> Result<(), SessionError> {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let outcome = std::panic::catch_unwind(AssertUnwindSafe(f));
    std::panic::set_hook(prev);
    match outcome {
        Err(_) => Ok(()),
        Ok(()) => Err(SessionError::Checkpoint(
            "the kill sink never fired: session finished before the interrupt point".into(),
        )),
    }
}

/// Seeded distinct interrupt points in `1..iterations`, at most five.
pub fn interrupt_points(iterations: u32, seed: u64) -> Vec<u64> {
    let mut rng = simkit::rng::SimRng::new(seed);
    let want = 5.min(iterations.saturating_sub(1) as usize);
    let mut points = Vec::new();
    while points.len() < want {
        let k = 1 + rng.next_u64() % (iterations as u64 - 1);
        if !points.contains(&k) {
            points.push(k);
        }
    }
    points
}

/// Trace wall-clock stamps differ between runs by construction; strip
/// them so the remaining bytes must match exactly.
fn strip_wall_ms(line: String) -> String {
    match line.find(",\"wall_ms\":") {
        Some(at) => format!("{}}}", &line[..at]),
        None => line,
    }
}

fn lines_of(sink: &MemorySink) -> Vec<String> {
    sink.records
        .iter()
        .map(|r| strip_wall_ms(r.to_json()))
        .collect()
}

fn uint_field(record: &TraceRecord, key: &str) -> u64 {
    match record.get(key) {
        Some(Value::UInt(v)) => *v,
        Some(Value::Int(v)) => u64::try_from(*v).unwrap_or(0),
        _ => 0,
    }
}

fn session(effort: &Effort, seed: u64) -> SessionConfig {
    SessionConfig::new(
        Topology::single(),
        Workload::Shopping,
        scale_pop(1_700, effort),
    )
    .plan(effort.plan)
    .base_seed(seed)
}

/// Run the experiment, checkpointing under a scratch directory in the
/// system temp dir (removed afterwards).
pub fn run(effort: &Effort, seed: u64) -> Result<ResumeResult, SessionError> {
    let scratch = std::env::temp_dir().join(format!(
        "exp-resume-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let result = run_in(effort, seed, &scratch);
    let _ = std::fs::remove_dir_all(&scratch);
    result
}

/// [`run`] with an explicit scratch directory (left in place: the
/// checkpoint directories it holds are the experiment's artifact).
pub fn run_in(effort: &Effort, seed: u64, scratch: &Path) -> Result<ResumeResult, SessionError> {
    let cfg = session(effort, seed);
    let iterations = effort.iterations;
    let snapshot_every = (iterations / 5).max(1);

    let mut full_sink = MemorySink::new();
    let mut observer = SessionObserver::with_sink(&mut full_sink);
    let full_run = tune_observed(&cfg, TuningMethod::Default, iterations, &mut observer)?;
    let full_lines = lines_of(&full_sink);
    // An iteration spans several trace records (iteration + tuner); the
    // kill fires on the first record of iteration `k`, so the expected
    // prefix is every reference record from before that point.
    let boundary = |k: u64| {
        full_sink
            .records
            .iter()
            .position(|r| uint_field(r, "iteration") >= k)
            .unwrap_or(full_sink.records.len())
    };

    let mut outcomes = Vec::new();
    for k in interrupt_points(iterations, seed ^ 0xD1E_0FF) {
        let dir: PathBuf = scratch.join(format!("kill-{k}"));
        let _ = std::fs::remove_dir_all(&dir);
        let policy = CheckpointPolicy::new(&dir).every(snapshot_every);

        let ck_cfg = cfg.clone().checkpoint(policy.clone());
        let mut sink = KillSink {
            inner: MemorySink::new(),
            kill_at: k,
        };
        run_killed(|| {
            let mut observer = SessionObserver::with_sink(&mut sink);
            let _ = tune_observed(&ck_cfg, TuningMethod::Default, iterations, &mut observer);
        })?;
        let pre = lines_of(&sink.inner);
        let prefix_identical = pre.len() == boundary(k) && full_lines[..pre.len()] == pre[..];

        let resume_cfg = cfg.clone().checkpoint(policy.resume(true));
        let mut resumed_sink = MemorySink::new();
        let mut observer = SessionObserver::with_sink(&mut resumed_sink);
        let run: TuningRun = tune_observed(
            &resume_cfg,
            TuningMethod::Default,
            iterations,
            &mut observer,
        )?;
        let resumed = lines_of(&resumed_sink);
        let splice = resumed_sink.records.first().ok_or_else(|| {
            SessionError::Checkpoint("resumed session produced no trace records".into())
        })?;

        outcomes.push(InterruptOutcome {
            kill_at: k,
            snapshot_iteration: uint_field(splice, "snapshot_iteration"),
            replayed: uint_field(splice, "replayed"),
            prefix_identical,
            tail_identical: resumed.len() == 1 + full_lines.len() - pre.len()
                && resumed[1..] == full_lines[pre.len()..],
            result_identical: run.best_wips.to_bits() == full_run.best_wips.to_bits()
                && run.records.len() == full_run.records.len(),
        });
    }

    Ok(ResumeResult {
        iterations,
        snapshot_every,
        baseline_best_wips: full_run.best_wips,
        outcomes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_resumes_exactly_at_every_point() {
        let effort = Effort::smoke();
        let r = run(&effort, 42).expect("experiment");
        assert_eq!(r.outcomes.len(), 5);
        for o in &r.outcomes {
            assert!(o.exact(), "{o:?}");
            assert!(o.kill_at >= 1 && o.kill_at < effort.iterations as u64);
            assert_eq!(
                o.snapshot_iteration + o.replayed,
                o.kill_at,
                "recovery must reconstruct exactly the pre-kill iterations: {o:?}"
            );
        }
        assert!(r.all_exact());
        assert!(r.baseline_best_wips > 0.0);
    }

    #[test]
    fn experiment_is_deterministic() {
        let effort = Effort::smoke();
        let a = run(&effort, 7).expect("run a");
        let b = run(&effort, 7).expect("run b");
        assert_eq!(
            a.baseline_best_wips.to_bits(),
            b.baseline_best_wips.to_bits()
        );
        let kills = |r: &ResumeResult| r.outcomes.iter().map(|o| o.kill_at).collect::<Vec<_>>();
        assert_eq!(kills(&a), kills(&b));
    }
}
