//! Paper-experiment runners: one per table/figure of the evaluation.
//!
//! Every runner takes an [`Effort`] so the same code path serves three
//! audiences: `paper()` regenerates the published artifact at full
//! fidelity, `quick()` gives a CI-speed approximation, and `smoke()` is
//! for unit tests.
//!
//! The browser populations are the calibrated operating points from
//! DESIGN.md §4 — chosen so the default configuration saturates each
//! workload's bottleneck the way the paper's testbed did.

pub mod chaos;
pub mod detect;
pub mod faults;
pub mod fig4;
pub mod fig5;
pub mod fig7;
pub mod resume;
pub mod sensitivity;
pub mod table3;
pub mod table4;
pub mod tuners;
pub mod tuning_process;

use tpcw::metrics::IntervalPlan;
use tpcw::mix::Workload;

/// How much simulation to spend.
#[derive(Debug, Clone, Copy)]
pub struct Effort {
    /// Measurement plan per iteration.
    pub plan: IntervalPlan,
    /// Tuning iterations per run (paper: 200).
    pub iterations: u32,
    /// Independent replicas for baseline/static measurements.
    pub reps: u32,
    /// Scale factor applied to all browser populations (1.0 = calibrated).
    pub population_scale: f64,
}

impl Effort {
    /// Full-fidelity regeneration (matches the paper's 200 iterations;
    /// interval plan is the proportionally reduced `fast` plan — see the
    /// DESIGN.md substitution table).
    pub fn paper() -> Effort {
        Effort {
            plan: IntervalPlan::fast(),
            iterations: 200,
            reps: 5,
            population_scale: 1.0,
        }
    }

    /// CI-speed approximation (a couple of minutes). Uses the same
    /// calibrated measurement plan as `paper()` — the tiny plan's short
    /// warm-up leaves proxy caches cold and shifts the bottleneck.
    pub fn quick() -> Effort {
        Effort {
            plan: IntervalPlan::fast(),
            iterations: 60,
            reps: 2,
            population_scale: 1.0,
        }
    }

    /// Unit-test speed; shapes are noisy at this effort.
    pub fn smoke() -> Effort {
        Effort {
            plan: IntervalPlan::tiny(),
            iterations: 10,
            reps: 1,
            population_scale: 0.25,
        }
    }
}

/// Calibrated per-workload operating points (browser populations) for the
/// single-work-line (1 proxy / 1 app / 1 db) experiments of §III.A.
pub fn population_for(workload: Workload, effort: &Effort) -> u32 {
    let base = match workload {
        Workload::Browsing => 1_300,
        Workload::Shopping => 1_700,
        Workload::Ordering => 1_450,
    };
    scale_pop(base, effort)
}

pub(crate) fn scale_pop(base: u32, effort: &Effort) -> u32 {
    ((base as f64 * effort.population_scale).round() as u32).max(10)
}

/// Operating point for the Figure 5 changing-workload run.
pub fn fig5_population(effort: &Effort) -> u32 {
    scale_pop(1_500, effort)
}

/// Operating point and topology scale for Table 4 (2 nodes per tier).
pub fn table4_population(effort: &Effort) -> u32 {
    scale_pop(3_400, effort)
}
