//! Changing-workload sessions (Figure 5).
//!
//! The workload switches on a fixed schedule while tuning runs
//! continuously; the tuner is *not* told about the change — it simply
//! observes different performance, exactly as the paper's system did. The
//! interesting output is how quickly measured WIPS recovers after each
//! switch.

use crate::binding;
use crate::session::{
    run_scenario, IterationRecord, SessionConfig, SessionError, SessionObserver, TuningRun,
};
use cluster::config::ClusterConfig;
use harmony::server::HarmonyServer;
use harmony::simplex::SimplexTuner;
use harmony::strategy::TuningMethod;
use tpcw::mix::Workload;

/// A workload schedule: hold each entry's workload for its span.
#[derive(Debug, Clone)]
pub struct WorkloadSchedule {
    /// `(span_in_iterations, workload)` segments, applied in order; the
    /// last segment extends to the end of the run.
    pub segments: Vec<(u32, Workload)>,
}

impl WorkloadSchedule {
    /// The paper's Figure 5 schedule: change the workload every
    /// `period` iterations, cycling Browsing → Shopping → Ordering.
    pub fn cycling(period: u32, cycles: u32) -> Self {
        let order = [Workload::Browsing, Workload::Shopping, Workload::Ordering];
        let segments = (0..cycles * 3)
            .map(|i| (period, order[(i % 3) as usize]))
            .collect();
        WorkloadSchedule { segments }
    }

    /// Workload active at `iteration`.
    pub fn workload_at(&self, iteration: u32) -> Workload {
        let mut acc = 0;
        for (span, w) in &self.segments {
            acc += span;
            if iteration < acc {
                return *w;
            }
        }
        self.segments
            .last()
            .map(|(_, w)| *w)
            .unwrap_or(Workload::Shopping)
    }

    /// Iterations at which the workload changes (segment boundaries).
    pub fn change_points(&self) -> Vec<u32> {
        let mut points = Vec::new();
        let mut acc = 0;
        for (i, (span, _)) in self.segments.iter().enumerate() {
            if i > 0 {
                points.push(acc);
            }
            acc += span;
        }
        points
    }

    /// Total scheduled iterations.
    pub fn total_iterations(&self) -> u32 {
        self.segments.iter().map(|(s, _)| s).sum()
    }
}

/// Run a single Harmony server (the §III.A setup: every parameter of the
/// single work line) against a workload schedule.
pub fn tune_with_schedule(
    base: &SessionConfig,
    schedule: &WorkloadSchedule,
) -> Result<TuningRun, SessionError> {
    tune_with_schedule_observed(base, schedule, false, &mut SessionObserver::none())
}

/// Like [`tune_with_schedule`], but the tuner's search state is reset at
/// every workload change point — the "told about the change" variant the
/// paper contrasts against. With `reset_on_change = false` this is exactly
/// the paper's continuous run.
pub fn tune_with_schedule_reset(
    base: &SessionConfig,
    schedule: &WorkloadSchedule,
) -> Result<TuningRun, SessionError> {
    tune_with_schedule_observed(base, schedule, true, &mut SessionObserver::none())
}

/// [`tune_with_schedule`] with optional tuner reset at change points and
/// per-iteration trace/metrics observation.
pub fn tune_with_schedule_observed(
    base: &SessionConfig,
    schedule: &WorkloadSchedule,
    reset_on_change: bool,
    observer: &mut SessionObserver,
) -> Result<TuningRun, SessionError> {
    base.validate_faults()?;
    let iterations = schedule.total_iterations();
    let change_points = schedule.change_points();
    let space = binding::full_space(&base.topology);
    let mut server = HarmonyServer::new("scheduled", Box::new(SimplexTuner::new(space)));
    let mut records = Vec::with_capacity(iterations as usize);
    let mut best_config = ClusterConfig::defaults(&base.topology);
    let mut best_wips = f64::NEG_INFINITY;
    let mut best_iter = 0;
    for i in 0..iterations {
        let t0 = std::time::Instant::now();
        let workload = schedule.workload_at(i);
        if reset_on_change && change_points.contains(&i) {
            server.reset();
        }
        let proposal = server.next_config();
        let config = binding::config_from_full(&base.topology, &proposal);
        let cfg = base.clone().workload(workload);
        let mut out = run_scenario(&cfg.scenario(config.clone(), i), observer.registry());
        cfg.apply_fault_noise(i, &mut out);
        let wips = out.metrics.wips;
        server.report(wips);
        if wips > best_wips {
            best_wips = wips;
            best_config = config.clone();
            best_iter = i;
        }
        observer.record_iteration(
            &cfg,
            "scheduled",
            i,
            &config,
            &out,
            best_wips,
            best_iter,
            &server.diagnostics(),
            t0.elapsed().as_secs_f64() * 1e3,
        );
        records.push(IterationRecord {
            iteration: i,
            wips,
            line_wips: out.line_wips,
            workload,
            failed: out.total_failed,
        });
    }
    observer.flush();
    Ok(TuningRun {
        method: TuningMethod::Default,
        records,
        best_config,
        best_wips,
        convergence_iteration: best_iter,
    })
}

/// Recovery time after each workload change: iterations until WIPS first
/// reaches `threshold_frac` of the segment's median WIPS.
pub fn recovery_iterations(
    run: &TuningRun,
    schedule: &WorkloadSchedule,
    threshold_frac: f64,
) -> Vec<(u32, Option<u32>)> {
    let wips = run.wips_series();
    schedule
        .change_points()
        .into_iter()
        .map(|cp| {
            let seg_end = schedule
                .change_points()
                .into_iter()
                .find(|&p| p > cp)
                .unwrap_or(schedule.total_iterations());
            let seg: Vec<f64> = wips[cp as usize..(seg_end as usize).min(wips.len())].to_vec();
            if seg.is_empty() {
                return (cp, None);
            }
            let mut sorted = seg.clone();
            sorted.sort_by(f64::total_cmp);
            let median = sorted[sorted.len() / 2];
            let recovered = seg
                .iter()
                .position(|&w| w >= threshold_frac * median)
                .map(|p| p as u32);
            (cp, recovered)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::config::Topology;
    use tpcw::metrics::IntervalPlan;

    #[test]
    fn cycling_schedule_layout() {
        let s = WorkloadSchedule::cycling(100, 2);
        assert_eq!(s.total_iterations(), 600);
        assert_eq!(s.workload_at(0), Workload::Browsing);
        assert_eq!(s.workload_at(99), Workload::Browsing);
        assert_eq!(s.workload_at(100), Workload::Shopping);
        assert_eq!(s.workload_at(250), Workload::Ordering);
        assert_eq!(s.workload_at(300), Workload::Browsing);
        assert_eq!(s.change_points(), vec![100, 200, 300, 400, 500]);
    }

    #[test]
    fn workload_at_past_end_holds_last() {
        let s = WorkloadSchedule {
            segments: vec![(10, Workload::Browsing), (10, Workload::Ordering)],
        };
        assert_eq!(s.workload_at(999), Workload::Ordering);
    }

    #[test]
    fn scheduled_run_switches_workloads() {
        let cfg = SessionConfig::new(Topology::single(), Workload::Browsing, 300)
            .plan(IntervalPlan::tiny());
        let schedule = WorkloadSchedule {
            segments: vec![(3, Workload::Browsing), (3, Workload::Ordering)],
        };
        let run = tune_with_schedule(&cfg, &schedule).expect("scheduled run");
        assert_eq!(run.records.len(), 6);
        assert_eq!(run.records[0].workload, Workload::Browsing);
        assert_eq!(run.records[5].workload, Workload::Ordering);
    }

    #[test]
    fn recovery_metric_computes() {
        let cfg = SessionConfig::new(Topology::single(), Workload::Browsing, 200)
            .plan(IntervalPlan::tiny());
        let schedule = WorkloadSchedule {
            segments: vec![(4, Workload::Browsing), (4, Workload::Shopping)],
        };
        let run = tune_with_schedule(&cfg, &schedule).expect("scheduled run");
        let rec = recovery_iterations(&run, &schedule, 0.9);
        assert_eq!(rec.len(), 1);
        assert_eq!(rec[0].0, 4);
    }

    #[test]
    fn reset_on_change_still_switches_and_completes() {
        let cfg = SessionConfig::new(Topology::single(), Workload::Browsing, 300)
            .plan(IntervalPlan::tiny())
            .pin_seed(true);
        let schedule = WorkloadSchedule {
            segments: vec![(3, Workload::Browsing), (3, Workload::Ordering)],
        };
        let plain = tune_with_schedule(&cfg, &schedule).expect("scheduled run");
        let reset = tune_with_schedule_reset(&cfg, &schedule).expect("scheduled run");
        assert_eq!(reset.records.len(), 6);
        // Identical until the first change point, then the reset run
        // diverges (fresh simplex from the space default).
        assert_eq!(plain.wips_series()[..3], reset.wips_series()[..3]);
        assert!(reset.wips_series().iter().all(|w| w.is_finite()));
    }
}
