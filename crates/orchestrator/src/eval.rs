//! The evaluation engine: memoized, optionally parallel measurement.
//!
//! The tuning loop spends essentially all of its wall-clock time inside
//! the DES — one full warm-up/measure/cool-down run per iteration — and
//! the simplex routinely revisits configurations it has already measured
//! (re-seeded init vertices after a restart, shrink points that project
//! onto an existing vertex, baseline sweeps re-running the defaults).
//! Because every run is a *pure function of its [`ClusterScenario`]*
//! (deterministic in the scenario seed, with fault windows baked into
//! the scenario itself), measurements can be memoized and replayed
//! bit-exactly, and future candidates can be evaluated speculatively on
//! worker threads without perturbing the search.
//!
//! Two independent switches:
//!
//! * **Cache** ([`EvalSettings::cache`]) — a fingerprint-keyed map from
//!   scenario to [`IterationOutcome`]. A hit returns the stored outcome
//!   bit-exactly; a miss runs the DES and stores the result. Keys cover
//!   the *entire* scenario (configuration, topology, workload, seed,
//!   fault timeline, work lines, …) via its `Debug` rendering, so two
//!   scenarios share an entry only when the simulation would be
//!   byte-for-byte identical anyway.
//! * **Speculation** ([`EvalSettings::threads`] ≠ 1, requires the
//!   cache) — the session asks its tuner which configurations it *may*
//!   propose over the next few iterations (see `Tuner::speculate`) and
//!   evaluates the misses concurrently on the process-wide worker pool
//!   ([`crate::par::shared_pool`]) before the sequential loop consumes
//!   them as cache hits. Wrong guesses cost only wasted background
//!   work; they can never change a result, because the consuming lookup
//!   is keyed by the scenario the loop actually built.
//!
//! Determinism argument: the cache stores the raw simulation outcome
//! (fault-noise multipliers are applied by the session *after* lookup,
//! exactly as on the uncached path), values are deterministic per key,
//! and hit/miss order affects only the counters — so sequential,
//! cached, and speculative-parallel engines produce byte-identical
//! traces and bit-equal WIPS. Only the end-of-session `eval` summary
//! record and the engine-metric totals (hits skip metric publication)
//! reflect the engine configuration; determinism tests strip those,
//! like `wall_ms`.

use cluster::model::ClusterScenario;
use cluster::node::NodeUtilization;
use cluster::runner::{
    run_iteration, run_iteration_checked, run_iteration_observed, IterationOutcome,
};
use obs::Registry;
use persist::{PersistError, State};
use simkit::time::SimDuration;
use tpcw::metrics::IterationMetrics;

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// How the evaluation engine runs measurements. The library default is
/// fully transparent (no cache, one thread): sessions behave exactly as
/// if the engine did not exist. The CLI turns the cache on by default
/// (`--no-eval-cache` opts out) and exposes `--eval-threads N`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalSettings {
    /// Memoize outcomes by scenario fingerprint.
    pub cache: bool,
    /// Worker threads for speculative candidate evaluation: `1` (the
    /// default) disables speculation entirely, `0` uses one thread per
    /// available core, anything else is an explicit thread count.
    pub threads: usize,
    /// Maximum cached entries; once full, new outcomes are no longer
    /// stored (deterministic, unlike an eviction policy).
    pub capacity: usize,
    /// How many future iterations to speculate across per loop step.
    /// Large enough by default to cover a whole simplex init chain.
    pub horizon: usize,
}

impl Default for EvalSettings {
    fn default() -> Self {
        EvalSettings {
            cache: false,
            threads: 1,
            capacity: 65_536,
            horizon: 32,
        }
    }
}

impl EvalSettings {
    /// Builder: enable/disable the memoization cache.
    pub fn cache(mut self, on: bool) -> Self {
        self.cache = on;
        self
    }

    /// Builder: set the speculative worker thread count (see
    /// [`EvalSettings::threads`]).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Builder: cap the number of cached outcomes.
    pub fn capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity;
        self
    }

    /// Builder: set the speculation horizon (iterations ahead).
    pub fn horizon(mut self, horizon: usize) -> Self {
        self.horizon = horizon;
        self
    }
}

/// Cumulative engine activity (monotone counters).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalCounters {
    /// Consuming lookups served from the cache.
    pub hits: u64,
    /// Consuming lookups that ran the DES.
    pub misses: u64,
    /// Speculative background evaluations whose result was *stored* for
    /// the sequential loop to consume — useful speculative work only.
    pub speculated: u64,
    /// Speculative evaluations whose result was discarded: the scenario
    /// failed validation, or the cache hit its capacity cap before the
    /// result could be stored.
    pub speculation_dropped: u64,
}

impl EvalCounters {
    /// Activity since an earlier snapshot of the same engine.
    pub fn since(&self, earlier: &EvalCounters) -> EvalCounters {
        EvalCounters {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            speculated: self.speculated.saturating_sub(earlier.speculated),
            speculation_dropped: self
                .speculation_dropped
                .saturating_sub(earlier.speculation_dropped),
        }
    }

    /// Fraction of consuming lookups served from the cache.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Deterministic memoization cache + speculative parallel evaluator.
///
/// Shared across everything a [`crate::session::SessionConfig`] is
/// cloned into (retry/re-measurement probes included) via `Arc`; all
/// methods take `&self`.
pub struct EvalEngine {
    settings: EvalSettings,
    cache: Mutex<BTreeMap<u64, IterationOutcome>>,
    hits: AtomicU64,
    misses: AtomicU64,
    speculated: AtomicU64,
    speculation_dropped: AtomicU64,
}

impl std::fmt::Debug for EvalEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EvalEngine")
            .field("settings", &self.settings)
            .field("entries", &self.len())
            .finish()
    }
}

/// Fingerprint of a scenario: FNV-1a over its `Debug` rendering, which
/// covers every field that feeds the simulation (config, topology,
/// workload, scale, browsers, plan, seed, lines, markov flag, load
/// balancing, node specs, and the projected fault timeline).
pub fn scenario_fingerprint(scenario: &ClusterScenario) -> u64 {
    crate::checkpoint::fnv1a(format!("{scenario:?}").as_bytes())
}

fn run_raw(scenario: &ClusterScenario, registry: Option<&Registry>) -> IterationOutcome {
    match registry {
        Some(r) => run_iteration_observed(scenario, r),
        None => run_iteration(scenario),
    }
}

impl EvalEngine {
    pub fn new(settings: EvalSettings) -> Self {
        EvalEngine {
            settings,
            cache: Mutex::new(BTreeMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            speculated: AtomicU64::new(0),
            speculation_dropped: AtomicU64::new(0),
        }
    }

    pub fn settings(&self) -> &EvalSettings {
        &self.settings
    }

    pub fn cache_enabled(&self) -> bool {
        self.settings.cache
    }

    pub fn threads(&self) -> usize {
        self.settings.threads
    }

    /// Is the engine doing anything beyond plain sequential evaluation?
    /// (Controls whether sessions emit an `eval` summary record.)
    pub fn enabled(&self) -> bool {
        self.settings.cache || self.settings.threads != 1
    }

    /// Iterations ahead to speculate, `0` when speculation is off.
    /// Speculation needs both the cache (to hand results back to the
    /// sequential loop) and more than one thread (to be worth anything).
    pub fn speculation_horizon(&self) -> usize {
        if self.settings.cache && self.settings.threads != 1 {
            self.settings.horizon
        } else {
            0
        }
    }

    /// Number of cached outcomes.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    pub fn counters(&self) -> EvalCounters {
        EvalCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            speculated: self.speculated.load(Ordering::Relaxed),
            speculation_dropped: self.speculation_dropped.load(Ordering::Relaxed),
        }
    }

    fn lock(&self) -> MutexGuard<'_, BTreeMap<u64, IterationOutcome>> {
        self.cache.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Evaluate one scenario through the cache. A hit returns the stored
    /// outcome bit-exactly and skips engine-metric publication (the
    /// simulation did not run); a miss runs the DES — publishing metrics
    /// when a registry is attached — and stores the result.
    pub fn run(&self, scenario: &ClusterScenario, registry: Option<&Registry>) -> IterationOutcome {
        if !self.settings.cache {
            return run_raw(scenario, registry);
        }
        let key = scenario_fingerprint(scenario);
        if let Some(hit) = self.lock().get(&key).cloned() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return hit;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let out = run_raw(scenario, registry);
        let mut cache = self.lock();
        if cache.len() < self.settings.capacity {
            cache.insert(key, out.clone());
        }
        out
    }

    /// Speculatively evaluate `scenarios` on the shared worker pool
    /// ([`crate::par::shared_pool`]), caching the results for the
    /// sequential loop to consume. Already-cached and duplicate
    /// scenarios are skipped; scenarios that fail validation are
    /// dropped so the consuming path re-runs them and reports the error
    /// with its usual context. Returns the number of evaluations
    /// actually executed; only *stored* results count toward the
    /// `speculated` counter, the rest land in `speculation_dropped`.
    pub fn prefetch(&self, scenarios: &[ClusterScenario]) -> usize {
        if self.speculation_horizon() == 0 || scenarios.is_empty() {
            return 0;
        }
        let mut keys: Vec<u64> = Vec::new();
        let mut todo: Vec<ClusterScenario> = Vec::new();
        {
            let cache = self.lock();
            let mut seen = BTreeSet::new();
            for s in scenarios {
                let key = scenario_fingerprint(s);
                if !cache.contains_key(&key) && seen.insert(key) {
                    keys.push(key);
                    todo.push(s.clone());
                }
            }
            // Never speculate past the capacity cap: entries that could
            // not be stored would be pure waste.
            let room = self.settings.capacity.saturating_sub(cache.len());
            keys.truncate(room);
            todo.truncate(room);
        }
        if todo.is_empty() {
            return 0;
        }
        let executed = todo.len();
        let outs = crate::par::shared_pool().run_batch(todo, self.settings.threads, |s| {
            run_iteration_checked(s).ok()
        });
        let mut stored = 0u64;
        let mut dropped = 0u64;
        {
            let mut cache = self.lock();
            for (key, out) in keys.into_iter().zip(outs) {
                match out {
                    Some(out) if cache.len() < self.settings.capacity => {
                        cache.insert(key, out);
                        stored += 1;
                    }
                    _ => dropped += 1,
                }
            }
        }
        self.speculated.fetch_add(stored, Ordering::Relaxed);
        self.speculation_dropped
            .fetch_add(dropped, Ordering::Relaxed);
        executed
    }

    /// Serialize the cache for a session snapshot (sorted by key, so
    /// the encoding is deterministic).
    pub fn save_cache_state(&self) -> State {
        let cache = self.lock();
        State::map().with(
            "entries",
            State::List(
                cache
                    .iter()
                    .map(|(k, v)| {
                        State::map()
                            .with("key", State::U64(*k))
                            .with("outcome", outcome_state(v))
                    })
                    .collect(),
            ),
        )
    }

    /// Merge entries saved by [`EvalEngine::save_cache_state`] back in
    /// (resume with a warm cache). Respects the capacity cap.
    pub fn restore_cache(&self, state: &State) -> Result<(), PersistError> {
        let entries = state.field_list("entries")?;
        let mut cache = self.lock();
        for entry in entries {
            if cache.len() >= self.settings.capacity {
                break;
            }
            let key = entry.field_u64("key")?;
            let outcome = outcome_from_state(entry.require("outcome")?)?;
            cache.insert(key, outcome);
        }
        Ok(())
    }
}

/// Serialize one cached outcome. `p90_response` travels as integer
/// microseconds and every float as raw bits (the `State` codec), so the
/// round trip is bit-exact.
pub(crate) fn outcome_state(out: &IterationOutcome) -> State {
    State::map()
        .with("wips", State::F64(out.metrics.wips))
        .with("completed", State::U64(out.metrics.completed))
        .with("browse_completed", State::U64(out.metrics.browse_completed))
        .with("order_completed", State::U64(out.metrics.order_completed))
        .with("errors", State::U64(out.metrics.errors))
        .with("dropped", State::U64(out.metrics.dropped))
        .with(
            "mean_response_secs",
            State::F64(out.metrics.mean_response_secs),
        )
        .with("p90_us", State::U64(out.metrics.p90_response.as_micros()))
        .with(
            "util",
            State::List(
                out.node_utilization
                    .iter()
                    .map(|u| State::f64_list(&[u.cpu, u.disk, u.net, u.mem]))
                    .collect(),
            ),
        )
        .with("total_done", State::U64(out.total_done))
        .with("total_failed", State::U64(out.total_failed))
        .with("line_wips", State::f64_list(&out.line_wips))
        .with("events", State::U64(out.events))
}

pub(crate) fn outcome_from_state(state: &State) -> Result<IterationOutcome, PersistError> {
    let node_utilization = state
        .field_list("util")?
        .iter()
        .map(|u| {
            let quad = u.to_f64_vec()?;
            if quad.len() != 4 {
                return Err(PersistError::Schema(format!(
                    "node utilization expects 4 values, found {}",
                    quad.len()
                )));
            }
            Ok(NodeUtilization {
                cpu: quad[0],
                disk: quad[1],
                net: quad[2],
                mem: quad[3],
            })
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(IterationOutcome {
        metrics: IterationMetrics {
            wips: state.field_f64("wips")?,
            completed: state.field_u64("completed")?,
            browse_completed: state.field_u64("browse_completed")?,
            order_completed: state.field_u64("order_completed")?,
            errors: state.field_u64("errors")?,
            dropped: state.field_u64("dropped")?,
            mean_response_secs: state.field_f64("mean_response_secs")?,
            p90_response: SimDuration::from_micros(state.field_u64("p90_us")?),
        },
        node_utilization,
        total_done: state.field_u64("total_done")?,
        total_failed: state.field_u64("total_failed")?,
        line_wips: state.require("line_wips")?.to_f64_vec()?,
        events: state.field_u64("events")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::SessionConfig;
    use cluster::config::{ClusterConfig, Topology};
    use tpcw::metrics::IntervalPlan;
    use tpcw::mix::Workload;

    fn cfg() -> SessionConfig {
        SessionConfig::new(Topology::single(), Workload::Shopping, 200).plan(IntervalPlan::tiny())
    }

    fn scenario(seed_offset: u32) -> ClusterScenario {
        let c = cfg();
        c.scenario(ClusterConfig::defaults(&c.topology), seed_offset)
    }

    #[test]
    fn fingerprint_distinguishes_scenario_inputs() {
        let base = scenario_fingerprint(&scenario(0));
        assert_eq!(base, scenario_fingerprint(&scenario(0)));
        assert_ne!(base, scenario_fingerprint(&scenario(1)), "seed must key");
        let c = cfg().population(300);
        let other = c.scenario(ClusterConfig::defaults(&c.topology), 0);
        assert_ne!(base, scenario_fingerprint(&other), "population must key");
        let f = cfg().fault_plan(faults::FaultPlan::new().crash(0.0, 0));
        let faulted = f.scenario(ClusterConfig::defaults(&f.topology), 0);
        assert_ne!(base, scenario_fingerprint(&faulted), "faults must key");
    }

    #[test]
    fn cache_hit_is_bit_identical_and_counted() {
        let engine = EvalEngine::new(EvalSettings::default().cache(true));
        let s = scenario(0);
        let a = engine.run(&s, None);
        let b = engine.run(&s, None);
        assert_eq!(a.metrics.wips.to_bits(), b.metrics.wips.to_bits());
        assert_eq!(a.line_wips, b.line_wips);
        assert_eq!(a.events, b.events);
        let c = engine.counters();
        assert_eq!((c.hits, c.misses), (1, 1));
        assert_eq!(engine.len(), 1);
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn disabled_cache_stores_nothing() {
        let engine = EvalEngine::new(EvalSettings::default());
        let s = scenario(0);
        let _ = engine.run(&s, None);
        assert!(engine.is_empty());
        assert_eq!(engine.counters(), EvalCounters::default());
        assert!(!engine.enabled());
        assert_eq!(engine.speculation_horizon(), 0);
    }

    #[test]
    fn capacity_bounds_the_cache() {
        let engine = EvalEngine::new(EvalSettings::default().cache(true).capacity(2));
        for i in 0..4 {
            let _ = engine.run(&scenario(i), None);
        }
        assert_eq!(engine.len(), 2);
        // The first two entries still hit.
        let _ = engine.run(&scenario(0), None);
        assert_eq!(engine.counters().hits, 1);
    }

    #[test]
    fn prefetch_feeds_the_consuming_lookup() {
        let engine = EvalEngine::new(EvalSettings::default().cache(true).threads(2));
        let scenarios: Vec<ClusterScenario> = (0..3).map(scenario).collect();
        // Duplicates and repeats are deduplicated.
        let executed = engine.prefetch(&scenarios);
        assert_eq!(executed, 3);
        assert_eq!(engine.prefetch(&scenarios), 0, "already cached");
        let out = engine.run(&scenarios[1], None);
        let c = engine.counters();
        assert_eq!((c.hits, c.misses, c.speculated), (1, 0, 3));
        assert_eq!(c.speculation_dropped, 0, "every result was stored");
        // The cached speculative result equals a fresh sequential run.
        let fresh = run_iteration(&scenarios[1]);
        assert_eq!(out.metrics.wips.to_bits(), fresh.metrics.wips.to_bits());
    }

    #[test]
    fn prefetch_counts_dropped_results_separately() {
        // Regression: `speculated` used to count every executed
        // speculation, including results that were never stored. A
        // scenario that fails validation is dropped (the consuming path
        // re-runs it for the real error) and must land in
        // `speculation_dropped`, not `speculated`.
        let engine = EvalEngine::new(EvalSettings::default().cache(true).threads(2));
        let good = scenario(0);
        let mut bad = scenario(1);
        bad.topology = cluster::config::Topology::tiers(2, 1, 1).expect("topology");
        let executed = engine.prefetch(&[good, bad]);
        assert_eq!(executed, 2, "both scenarios were evaluated");
        let c = engine.counters();
        assert_eq!(c.speculated, 1, "only the stored result counts");
        assert_eq!(c.speculation_dropped, 1, "the invalid scenario was dropped");
        assert_eq!(engine.len(), 1);
    }

    #[test]
    fn counters_since_includes_dropped() {
        let a = EvalCounters {
            hits: 5,
            misses: 4,
            speculated: 3,
            speculation_dropped: 2,
        };
        let b = EvalCounters {
            hits: 7,
            misses: 5,
            speculated: 6,
            speculation_dropped: 5,
        };
        let d = b.since(&a);
        assert_eq!(
            (d.hits, d.misses, d.speculated, d.speculation_dropped),
            (2, 1, 3, 3)
        );
    }

    #[test]
    fn prefetch_requires_cache_and_threads() {
        let no_cache = EvalEngine::new(EvalSettings::default().threads(4));
        assert_eq!(no_cache.prefetch(&[scenario(0)]), 0);
        let one_thread = EvalEngine::new(EvalSettings::default().cache(true));
        assert_eq!(one_thread.prefetch(&[scenario(0)]), 0);
    }

    #[test]
    fn cache_state_roundtrip_is_bit_exact() {
        let engine = EvalEngine::new(EvalSettings::default().cache(true));
        let scenarios: Vec<ClusterScenario> = (0..3).map(scenario).collect();
        let originals: Vec<IterationOutcome> =
            scenarios.iter().map(|s| engine.run(s, None)).collect();
        let saved = engine.save_cache_state();
        let decoded = State::decode(&saved.encode()).expect("decode");
        let restored = EvalEngine::new(EvalSettings::default().cache(true));
        restored.restore_cache(&decoded).expect("restore");
        assert_eq!(restored.len(), 3);
        for (s, orig) in scenarios.iter().zip(&originals) {
            let hit = restored.run(s, None);
            assert_eq!(hit.metrics.wips.to_bits(), orig.metrics.wips.to_bits());
            assert_eq!(
                hit.metrics.mean_response_secs.to_bits(),
                orig.metrics.mean_response_secs.to_bits()
            );
            assert_eq!(hit.metrics.p90_response, orig.metrics.p90_response);
            assert_eq!(hit.metrics.completed, orig.metrics.completed);
            assert_eq!(hit.total_done, orig.total_done);
            assert_eq!(hit.total_failed, orig.total_failed);
            assert_eq!(hit.events, orig.events);
            assert_eq!(hit.line_wips.len(), orig.line_wips.len());
            for (a, b) in hit.line_wips.iter().zip(&orig.line_wips) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            assert_eq!(hit.node_utilization.len(), orig.node_utilization.len());
            for (a, b) in hit.node_utilization.iter().zip(&orig.node_utilization) {
                assert_eq!(a.cpu.to_bits(), b.cpu.to_bits());
                assert_eq!(a.disk.to_bits(), b.disk.to_bits());
                assert_eq!(a.net.to_bits(), b.net.to_bits());
                assert_eq!(a.mem.to_bits(), b.mem.to_bits());
            }
        }
        assert_eq!(restored.counters().hits, 3);
    }

    #[test]
    fn restore_rejects_malformed_state() {
        let engine = EvalEngine::new(EvalSettings::default().cache(true));
        assert!(engine.restore_cache(&State::Null).is_err());
        let bad = State::map().with(
            "entries",
            State::List(vec![State::map().with("key", State::U64(1))]),
        );
        assert!(engine.restore_cache(&bad).is_err());
    }
}
