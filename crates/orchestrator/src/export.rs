//! CSV export of run traces — for plotting the figures outside the
//! terminal (gnuplot, matplotlib, a spreadsheet).

use crate::reconfigure::ReconfigRun;
use crate::session::TuningRun;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Escape one CSV field (quote when needed, double inner quotes).
fn field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Render a tuning run as CSV text: one row per iteration.
pub fn tuning_run_csv(run: &TuningRun) -> String {
    let mut out = String::from("iteration,wips,workload,failed,line_wips\n");
    for r in &run.records {
        let lines = r
            .line_wips
            .iter()
            .map(|w| format!("{w:.3}"))
            .collect::<Vec<_>>()
            .join(";");
        let _ = writeln!(
            out,
            "{},{:.3},{},{},{}",
            r.iteration,
            r.wips,
            field(r.workload.name()),
            r.failed,
            field(&lines),
        );
    }
    out
}

/// Render a reconfiguration run as CSV: iterations plus an `event` column
/// describing any move that happened at that iteration.
pub fn reconfig_run_csv(run: &ReconfigRun) -> String {
    let mut out = String::from("iteration,wips,workload,failed,event\n");
    for r in &run.records {
        let event = run
            .events
            .iter()
            .find(|e| e.iteration == r.iteration)
            .map(|e| format!("node {} {}->{}", e.node, e.from_tier, e.to_tier))
            .unwrap_or_default();
        let _ = writeln!(
            out,
            "{},{:.3},{},{},{}",
            r.iteration,
            r.wips,
            field(r.workload.name()),
            r.failed,
            field(&event),
        );
    }
    out
}

/// Render a generic named series set as CSV (figures with several lines).
pub fn series_csv(names: &[&str], series: &[Vec<f64>]) -> String {
    assert_eq!(names.len(), series.len());
    let mut out = String::from("index");
    for n in names {
        out.push(',');
        out.push_str(&field(n));
    }
    out.push('\n');
    let rows = series.iter().map(|s| s.len()).max().unwrap_or(0);
    for i in 0..rows {
        let _ = write!(out, "{i}");
        for s in series {
            match s.get(i) {
                Some(v) => {
                    let _ = write!(out, ",{v:.4}");
                }
                None => out.push(','),
            }
        }
        out.push('\n');
    }
    out
}

/// Write CSV text to a file.
pub fn write_csv(path: impl AsRef<Path>, csv: &str) -> io::Result<()> {
    std::fs::write(path, csv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{tune, SessionConfig};
    use cluster::config::Topology;
    use harmony::strategy::TuningMethod;
    use tpcw::metrics::IntervalPlan;
    use tpcw::mix::Workload;

    fn tiny_run() -> TuningRun {
        let mut cfg = SessionConfig::new(Topology::single(), Workload::Shopping, 150);
        cfg.plan = IntervalPlan::tiny();
        tune(&cfg, TuningMethod::None, 3)
    }

    #[test]
    fn tuning_csv_shape() {
        let run = tiny_run();
        let csv = tuning_run_csv(&run);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 4); // header + 3 rows
        assert_eq!(lines[0], "iteration,wips,workload,failed,line_wips");
        assert!(lines[1].starts_with("0,"));
        assert!(lines[1].contains("Shopping"));
    }

    #[test]
    fn field_escaping() {
        assert_eq!(field("plain"), "plain");
        assert_eq!(field("a,b"), "\"a,b\"");
        assert_eq!(field("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn series_csv_pads_ragged_series() {
        let csv = series_csv(&["a", "b"], &[vec![1.0, 2.0, 3.0], vec![9.0]]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "index,a,b");
        assert_eq!(lines[1], "0,1.0000,9.0000");
        assert_eq!(lines[3], "2,3.0000,");
    }

    #[test]
    fn writes_to_disk() {
        let run = tiny_run();
        let path = std::env::temp_dir().join("ah_webtune_export_test.csv");
        write_csv(&path, &tuning_run_csv(&run)).unwrap();
        let read = std::fs::read_to_string(&path).unwrap();
        assert!(read.starts_with("iteration,"));
        let _ = std::fs::remove_file(&path);
    }
}
