//! CSV export of run traces — for plotting the figures outside the
//! terminal (gnuplot, matplotlib, a spreadsheet).
//!
//! Everything here is a thin layer over [`obs::CsvWriter`]: runs are
//! turned into [`obs::TraceRecord`] streams and rendered by the shared
//! sink, so the quoting rules and cell formats match the `--trace` output.

use crate::reconfigure::ReconfigRun;
use crate::session::{IterationRecord, TuningRun};
use obs::{CsvWriter, TraceRecord, TraceSink};
use std::io;
use std::path::Path;

/// Round to 3 decimals so CSV cells stay short (shortest-round-trip
/// formatting would print the full double).
fn round3(v: f64) -> f64 {
    (v * 1_000.0).round() / 1_000.0
}

fn iteration_record(r: &IterationRecord) -> TraceRecord {
    TraceRecord::new("iteration")
        .field("iteration", r.iteration)
        .field("wips", round3(r.wips))
        .field("workload", r.workload.name())
        .field("failed", r.failed)
        .field("line_wips", r.line_wips.clone())
}

/// Render records through a [`CsvWriter`] into a string.
fn csv_text(records: impl IntoIterator<Item = TraceRecord>) -> String {
    let mut w = CsvWriter::new(Vec::new());
    for r in records {
        w.emit(&r);
    }
    // CsvWriter only ever writes UTF-8 encoded text.
    #[allow(clippy::expect_used)]
    String::from_utf8(w.into_inner()).expect("CSV output is UTF-8")
}

/// Render a tuning run as CSV text: one row per iteration.
/// Header: `iteration,wips,workload,failed,line_wips`.
pub fn tuning_run_csv(run: &TuningRun) -> String {
    csv_text(run.records.iter().map(iteration_record))
}

/// Render a reconfiguration run as CSV: iterations plus an `event` column
/// describing any move that happened at that iteration.
pub fn reconfig_run_csv(run: &ReconfigRun) -> String {
    csv_text(run.records.iter().map(|r| {
        let event = run
            .events
            .iter()
            .find(|e| e.iteration == r.iteration)
            .map(|e| format!("node {} {}->{}", e.node, e.from_tier, e.to_tier))
            .unwrap_or_default();
        TraceRecord::new("iteration")
            .field("iteration", r.iteration)
            .field("wips", round3(r.wips))
            .field("workload", r.workload.name())
            .field("failed", r.failed)
            .field("event", event)
    }))
}

/// Render a generic named series set as CSV (figures with several lines).
/// Ragged series pad with empty cells.
pub fn series_csv(names: &[&str], series: &[Vec<f64>]) -> String {
    assert_eq!(names.len(), series.len());
    let rows = series.iter().map(|s| s.len()).max().unwrap_or(0);
    csv_text((0..rows).map(|i| {
        let mut rec = TraceRecord::new("series").field("index", i);
        for (name, s) in names.iter().zip(series) {
            match s.get(i) {
                Some(v) => rec.push(*name, round3(*v)),
                None => rec.push(*name, ""),
            }
        }
        rec
    }))
}

/// Write CSV text to a file.
pub fn write_csv(path: impl AsRef<Path>, csv: &str) -> io::Result<()> {
    std::fs::write(path, csv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{tune, SessionConfig};
    use cluster::config::Topology;
    use harmony::strategy::TuningMethod;
    use tpcw::metrics::IntervalPlan;
    use tpcw::mix::Workload;

    fn tiny_run() -> TuningRun {
        let cfg = SessionConfig::new(Topology::single(), Workload::Shopping, 150)
            .plan(IntervalPlan::tiny());
        tune(&cfg, TuningMethod::None, 3).expect("tiny run")
    }

    #[test]
    fn tuning_csv_shape() {
        let run = tiny_run();
        let csv = tuning_run_csv(&run);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 4); // header + 3 rows
        assert_eq!(lines[0], "iteration,wips,workload,failed,line_wips");
        assert!(lines[1].starts_with("0,"));
        assert!(lines[1].contains("Shopping"));
    }

    #[test]
    fn series_csv_pads_ragged_series() {
        let csv = series_csv(&["a", "b"], &[vec![1.0, 2.0, 3.0], vec![9.0]]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "index,a,b");
        assert_eq!(lines[1], "0,1.0,9.0");
        assert_eq!(lines[3], "2,3.0,");
    }

    #[test]
    fn writes_to_disk() {
        let run = tiny_run();
        let path = std::env::temp_dir().join("ah_webtune_export_test.csv");
        write_csv(&path, &tuning_run_csv(&run)).unwrap();
        let read = std::fs::read_to_string(&path).unwrap();
        assert!(read.starts_with("iteration,"));
        let _ = std::fs::remove_file(&path);
    }
}
