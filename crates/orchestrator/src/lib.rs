//! # orchestrator — coupling Active Harmony to the simulated cluster
//!
//! The glue layer of the reproduction:
//!
//! * [`binding`] — maps cluster tunables ↔ Harmony search spaces for the
//!   three §III tuning layouts (full per-node, per-tier duplication,
//!   per-work-line partitioning);
//! * [`session`] — tuning sessions: propose → simulate one
//!   warm-up/measure/cool-down cycle → observe WIPS;
//! * [`schedule`] — changing-workload sessions (Figure 5);
//! * [`reconfigure`] — tuning plus the §IV automatic reconfiguration
//!   controller (Figure 7);
//! * [`resilient`] — fault-tolerant sessions: retry/backoff,
//!   re-measurement, circuit breaking, failure-driven reconfiguration;
//! * [`checkpoint`] — crash-safe session persistence: write-ahead
//!   journal, periodic snapshots, and deterministic resume;
//! * [`eval`] — the evaluation engine: memoized measurements and
//!   speculative parallel candidate evaluation;
//! * [`experiments`] — one typed runner per paper table/figure;
//! * [`par`] — crossbeam-based parallel fan-out of independent runs;
//! * [`report`] — text tables and sparklines for the regenerators.

//!
//! ## A complete tuning session
//!
//! ```
//! use orchestrator::session::{tune, SessionConfig};
//! use harmony::strategy::TuningMethod;
//! use cluster::config::Topology;
//! use tpcw::metrics::IntervalPlan;
//! use tpcw::mix::Workload;
//!
//! let cfg = SessionConfig::new(Topology::single(), Workload::Shopping, 200)
//!     .plan(IntervalPlan::tiny());
//! let run = tune(&cfg, TuningMethod::Default, 5).expect("session");
//! assert_eq!(run.records.len(), 5);
//! assert!(run.best_wips > 0.0);
//! ```

// Session code must surface failures as `SessionError`, never panic;
// test modules (cfg(test)) are exempt. CI enforces this with a clippy
// step dedicated to this crate.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod binding;
pub mod checkpoint;
pub mod eval;
pub mod experiments;
pub mod export;
pub mod par;
pub mod reconfigure;
pub mod report;
pub mod resilient;
pub mod schedule;
pub mod session;

pub use checkpoint::CheckpointPolicy;
pub use eval::{EvalEngine, EvalSettings};
pub use experiments::Effort;
pub use resilient::{run_resilient_session, ResilienceSettings, ResilientRun};
pub use session::{tune, SessionConfig, SessionError, TuningRun};
