//! Fault-tolerant tuning sessions: a composable resilience policy stack
//! (fallback ∘ breaker ∘ retry ∘ timeout ∘ bulkhead) plus
//! failure-driven reconfiguration.
//!
//! A resilient session is the §III duplication loop hardened against the
//! faults a [`faults::FaultPlan`] injects. Iteration `i` covers simulated
//! time `[i·plan.total(), (i+1)·plan.total())` of the fault schedule
//! ([`faults::FaultClock::window_of`]). Each iteration's evaluation runs
//! through a [`resilience::Stack`]:
//!
//! 1. faults landing in the window are traced (`fault` records) and
//!    applied inside the DES via the scenario's health timeline;
//! 2. a sample invalidated by a crash during the *measurement* phase (or
//!    one that measured zero throughput) is retried by the
//!    [`resilience::Retry`] layer with bounded, jittered backoff — the
//!    retry sees the post-crash steady state, as a real re-measurement
//!    would;
//! 3. a sample whose measured WIPS deviates wildly from its completion
//!    count (a measurement-noise spike) is re-measured through the
//!    [`OutlierGate`] inside the evaluation closure;
//! 4. an attempt whose simulated time (window plus any stalled seconds)
//!    exceeds the optional [`resilience::Timeout`] budget is invalidated
//!    and retried like any other bad sample;
//! 5. a configuration that exhausts its retry budget is reported to
//!    Harmony as worthless (0.0 — the proposal is always answered) and
//!    counted against the per-configuration [`CircuitBreaker`] layer; a
//!    blacklisted configuration is rejected without re-measuring (and,
//!    when `breaker_half_open_after` is set, periodically probed);
//! 6. with `degrade_to_best`, an iteration that would otherwise fail
//!    outright degrades to the best-known sample ([`resilience::Fallback`],
//!    `degraded` trace records) instead;
//! 7. a crash triggers the §IV `decide()` path over the *live* nodes; if
//!    the cost model declines, a spare node is pulled directly into the
//!    wounded tier so the cluster heals anyway.
//!
//! Retry delays are simulated time (deterministic jitter from the fault
//! seed); they are reported in `recovery` trace records but do not shift
//! the window mapping, which stays iteration-indexed. The whole policy
//! stack checkpoints bit-exactly (per-delta `policy` state), so a killed
//! session resumes mid-policy without re-burning RNG draws.

use crate::binding;
use crate::checkpoint::{self, Checkpointer};
use crate::reconfigure::ReconfigEvent;
use crate::session::{
    ckerr, config_summary, tuner_seed, IterationRecord, SessionConfig, SessionError,
    SessionObserver,
};
use cluster::config::{ClusterConfig, Role, Topology};
use cluster::runner::IterationOutcome;
use detect::{Detector, DetectorConfig, NodeState, WindowReport};
use faults::{FaultClock, FaultEvent, FaultInjector, FaultPlan, HealthTimeline, WindowFaults};
use harmony::monitor::UtilizationSnapshot;
use harmony::reconfig::{decide, CostModel, NodeCostInputs, NodeReport, Thresholds};
use harmony::server::HarmonyServer;
use obs::Registry;
use persist::{Checkpointable, PersistError, State};
use resilience::{
    Breaker, Bulkhead, CircuitBreaker, Ctx, Event, Fallback, Outcome, OutlierGate, Retry,
    RetryPolicy, Sample, Stack, StateCodec, Timeout,
};
use simkit::time::{SimDuration, SimTime};

/// Policy knobs of a resilient session. The defaults reduce the optional
/// layers (timeout, bulkhead, half-open probing, degradation) to the
/// identity, reproducing the original retry+breaker behavior exactly.
#[derive(Debug, Clone)]
pub struct ResilienceSettings {
    /// Bounded retry with backoff for invalid samples.
    pub retry: RetryPolicy,
    /// Re-measurement gate for noise-spiked samples.
    pub gate: OutlierGate,
    /// Failed evaluations of one configuration before it is blacklisted.
    pub breaker_threshold: u32,
    /// Probe a blacklisted configuration after this many refused
    /// evaluations (`None`: blacklists are permanent).
    pub breaker_half_open_after: Option<u32>,
    /// Per-attempt simulated-time budget in seconds (`None`: unlimited).
    /// An attempt is charged the measurement window plus any stalled
    /// seconds the fault plan injects into it.
    pub timeout_s: Option<f64>,
    /// Cap on concurrently in-flight evaluations (`None`: unbounded).
    /// Also clamps speculative-evaluation width via
    /// [`Bulkhead::clamp_threads`].
    pub bulkhead: Option<u32>,
    /// Substitute the best-known sample when an iteration fails outright
    /// (emits `degraded` trace records; the tuner still sees 0.0).
    pub degrade_to_best: bool,
    /// Pull a spare node into a tier that lost one to a crash.
    pub reconfigure_on_crash: bool,
    /// Drive reconfiguration from *detected* membership instead of the
    /// injector's health oracle: heartbeats → φ-accrual suspicion →
    /// hysteretic membership ([`detect::Detector`]). `None` keeps the
    /// historical oracle behavior bit-exactly.
    pub detector: Option<DetectorConfig>,
    /// Utilization thresholds for the `decide()` attempt.
    pub thresholds: Thresholds,
    /// Cost model for the `decide()` attempt.
    pub cost_model: CostModel,
}

impl Default for ResilienceSettings {
    fn default() -> Self {
        ResilienceSettings {
            retry: RetryPolicy::default(),
            gate: OutlierGate::default(),
            breaker_threshold: 3,
            breaker_half_open_after: None,
            timeout_s: None,
            bulkhead: None,
            degrade_to_best: false,
            reconfigure_on_crash: true,
            detector: None,
            thresholds: Thresholds::default(),
            cost_model: CostModel::default(),
        }
    }
}

/// One resilience action taken during the run (mirrors the `recovery`
/// and `degraded` trace records).
#[derive(Debug, Clone)]
pub struct RecoveryAction {
    pub iteration: u32,
    /// `retry`, `remeasure`, `timeout`, `breaker_open`, `breaker_skip`,
    /// `breaker_probe`, `bulkhead_skip`, `degraded`, `reconfig`.
    pub action: &'static str,
    pub attempt: u32,
    /// Simulated delay, seconds (backoff for retries, elapsed budget
    /// overrun for timeouts, 0 otherwise).
    pub delay_s: f64,
    /// WIPS of the sample that triggered or resolved the action.
    pub wips: f64,
}

/// One detected membership transition, scored against the injector's
/// ground truth. Mirrors the `membership` trace record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectionEvent {
    pub iteration: u32,
    pub node: usize,
    /// Simulated time of the assessment tick that decided the transition.
    pub at_s: f64,
    /// Membership state names (`up` / `suspect` / `down`).
    pub from: &'static str,
    pub to: &'static str,
    /// The φ that triggered the assessment.
    pub phi: f64,
    /// Whether the injector's ground truth had the node crashed at the
    /// transition instant (a `down` confirmation with `false` here is a
    /// false positive — typically a long stall believed dead).
    pub truth_crashed: bool,
    /// For a true-positive `down` confirmation: seconds from the crash to
    /// the confirmation. `-1.0` when not applicable.
    pub latency_s: f64,
}

impl DetectionEvent {
    /// The transition confirmed a node `Down`.
    pub fn is_down(&self) -> bool {
        self.to == "down"
    }

    /// A `Down` confirmation the ground truth contradicts.
    pub fn is_false_positive(&self) -> bool {
        self.is_down() && !self.truth_crashed
    }
}

/// Result of a resilient tuning session.
#[derive(Debug, Clone)]
pub struct ResilientRun {
    pub records: Vec<IterationRecord>,
    /// Fault events injected, tagged with the iteration they hit.
    pub faults: Vec<(u32, FaultEvent)>,
    /// Resilience actions taken, in order.
    pub recoveries: Vec<RecoveryAction>,
    /// Failure-driven node moves.
    pub reconfigs: Vec<ReconfigEvent>,
    /// Detected membership transitions (empty unless
    /// [`ResilienceSettings::detector`] is set).
    pub detections: Vec<DetectionEvent>,
    pub final_topology: Topology,
    pub best_wips: f64,
}

impl ResilientRun {
    /// Per-iteration WIPS series.
    pub fn wips_series(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.wips).collect()
    }

    /// Best WIPS seen strictly before `iteration`.
    pub fn running_best_before(&self, iteration: u32) -> f64 {
        self.records
            .iter()
            .filter(|r| r.iteration < iteration)
            .map(|r| r.wips)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Iteration of the first crash, if the plan had one.
    pub fn first_crash_iteration(&self) -> Option<u32> {
        self.faults
            .iter()
            .find(|(_, e)| matches!(e.kind, faults::FaultKind::Crash))
            .map(|(i, _)| *i)
    }

    /// `Down` confirmations the ground truth contradicts.
    pub fn detection_false_positives(&self) -> usize {
        self.detections
            .iter()
            .filter(|d| d.is_false_positive())
            .count()
    }

    /// Mean seconds from a crash to its `Down` confirmation, over the
    /// true-positive detections (`None`: no true positive was scored).
    pub fn mean_detection_latency_s(&self) -> Option<f64> {
        let lat: Vec<f64> = self
            .detections
            .iter()
            .filter(|d| d.is_down() && d.truth_crashed && d.latency_s >= 0.0)
            .map(|d| d.latency_s)
            .collect();
        (!lat.is_empty()).then(|| lat.iter().sum::<f64>() / lat.len() as f64)
    }

    /// How many iterations after the first crash WIPS first reached
    /// `frac` of the pre-crash running best (`None`: never, or no crash).
    pub fn recovery_iterations(&self, frac: f64) -> Option<u32> {
        let crash = self.first_crash_iteration()?;
        let target = self.running_best_before(crash) * frac;
        self.records
            .iter()
            .filter(|r| r.iteration > crash)
            .find(|r| r.wips >= target)
            .map(|r| r.iteration - crash)
    }
}

/// The domain value flowing through the policy stack: the configuration
/// under test and its measured outcome. Round-trips through
/// [`persist::State`] so the fallback's best-known sample survives
/// kill-and-resume bit-exactly.
#[derive(Debug, Clone)]
struct EvalSample {
    config: ClusterConfig,
    out: IterationOutcome,
}

impl StateCodec for EvalSample {
    fn to_state(&self) -> State {
        State::map()
            .with("config", checkpoint::config_state(&self.config))
            .with("outcome", crate::eval::outcome_state(&self.out))
    }

    fn from_state(state: &State) -> Result<Self, PersistError> {
        Ok(EvalSample {
            config: checkpoint::config_from_state(state.require("config")?)?,
            out: crate::eval::outcome_from_state(state.require("outcome")?)?,
        })
    }
}

/// The session's policy composition, outermost first: fallback ∘ breaker
/// ∘ retry ∘ timeout ∘ bulkhead. The retry jitter stream is seeded from
/// the fault seed exactly as before, so fault-plan sessions keep their
/// historical delay sequences.
fn build_policy_stack(base: &SessionConfig, settings: &ResilienceSettings) -> Stack<EvalSample> {
    Stack::new()
        .layer(Fallback::new(settings.degrade_to_best))
        .layer(Breaker::new(
            CircuitBreaker::new(settings.breaker_threshold)
                .half_open_after(settings.breaker_half_open_after),
        ))
        .layer(Retry::new(settings.retry, base.fault_seed ^ 0xBACC_0FF5))
        .layer(Timeout::new(
            settings.timeout_s.map(SimDuration::from_secs_f64),
        ))
        .layer(Bulkhead::new(settings.bulkhead))
}

/// Run a resilient duplication-tuning session under a fault plan.
pub fn run_resilient_session(
    base: &SessionConfig,
    settings: &ResilienceSettings,
    iterations: u32,
) -> Result<ResilientRun, SessionError> {
    run_resilient_session_observed(base, settings, iterations, &mut SessionObserver::none())
}

/// [`run_resilient_session`] with trace/metrics observation: `iteration`
/// records as usual, plus `fault`, `recovery`, and `degraded` records and
/// the `faults.injected` / `resilience.*` counters.
pub fn run_resilient_session_observed(
    base: &SessionConfig,
    settings: &ResilienceSettings,
    iterations: u32,
    observer: &mut SessionObserver,
) -> Result<ResilientRun, SessionError> {
    base.validate_faults()?;
    // One injector for the whole session: the fault schedule is a pure
    // function of (plan, seed), so rebuilding it per iteration was pure
    // waste. Node count never changes across reassigns.
    let injector = base
        .fault_plan
        .as_ref()
        .map(|p| FaultInjector::new(p, base.fault_seed));
    // Detector mode without a fault plan still observes heartbeats (all
    // healthy, jitter only): monitor an injector over the empty plan.
    let clean_injector = FaultInjector::new(&FaultPlan::new(), base.fault_seed);
    let mut detector = settings
        .detector
        .map(|dc| Detector::new(dc, base.topology.len(), base.fault_seed));
    let mut detections: Vec<DetectionEvent> = Vec::new();
    let mut topology = base.topology.clone();
    // Tier servers run the session's configured tuning algorithm,
    // resolved through the harmony registry exactly like plain tuning.
    let tier_tuner = |space, index| {
        harmony::registry::make_tuner_seeded(&base.tuner, space, None, tuner_seed(base, index))
            .map_err(|e| SessionError::UnknownTuner(e.to_string()))
    };
    // Batch protocol (ask/tell v2): tuners propose whole rounds up front so
    // the queued remainder can feed speculative prefetch, exactly like the
    // plain tuning session's tier servers.
    let mut servers = [
        HarmonyServer::new(
            "proxy-tier",
            tier_tuner(binding::role_space(Role::Proxy), 0)?,
        )
        .batch_protocol(true),
        HarmonyServer::new("web-tier", tier_tuner(binding::role_space(Role::App), 1)?)
            .batch_protocol(true),
        HarmonyServer::new("db-tier", tier_tuner(binding::role_space(Role::Db), 2)?)
            .batch_protocol(true),
    ];
    let mut stack = build_policy_stack(base, settings);
    let mut records = Vec::with_capacity(iterations as usize);
    let mut fault_log = Vec::new();
    let mut recoveries = Vec::new();
    let mut reconfigs = Vec::new();
    let mut best_wips = f64::NEG_INFINITY;
    let mut best_iter = 0;
    let mut start = 0u32;

    let mut ckpt = match base.checkpoint.as_ref() {
        None => None,
        Some(policy) => {
            let fp = checkpoint::session_fingerprint(
                base,
                &format!("resilient/{settings:?}"),
                iterations,
                iterations,
            );
            let (ck, resumed) = Checkpointer::open(policy, fp)?;
            if let Some(resumed) = resumed {
                let mut snapshot_iteration: i64 = -1;
                if let Some((snap_iter, state)) = resumed.snapshot.as_ref() {
                    snapshot_iteration = *snap_iter as i64;
                    start = *snap_iter as u32;
                    topology =
                        checkpoint::topology_from_state(state.require("topology").map_err(ckerr)?)
                            .map_err(ckerr)?;
                    let saved = state.field_list("servers").map_err(ckerr)?;
                    if saved.len() != servers.len() {
                        return Err(SessionError::Checkpoint(format!(
                            "resilient snapshot expects {} server states, found {}",
                            servers.len(),
                            saved.len()
                        )));
                    }
                    for (server, st) in servers.iter_mut().zip(saved) {
                        server.restore_state(st).map_err(ckerr)?;
                    }
                    stack
                        .restore_state(state.require("policy").map_err(ckerr)?)
                        .map_err(ckerr)?;
                    best_wips = state.field_f64("best_wips").map_err(ckerr)?;
                    best_iter = state.field_u64("best_iteration").map_err(ckerr)? as u32;
                    records =
                        checkpoint::records_from_state(state.require("records").map_err(ckerr)?)
                            .map_err(ckerr)?;
                    recoveries = checkpoint::recoveries_from_state(
                        state.require("recoveries").map_err(ckerr)?,
                    )
                    .map_err(ckerr)?;
                    reconfigs = checkpoint::reconfigs_from_state(
                        state.require("reconfigs").map_err(ckerr)?,
                    )
                    .map_err(ckerr)?;
                    // Warm the evaluation cache from the snapshot (older
                    // snapshots — or cache-off sessions — lack the field).
                    if let Some(cached) = state.get("eval_cache") {
                        base.eval.restore_cache(cached).map_err(ckerr)?;
                    }
                    // Detector mode is part of the fingerprint, so a
                    // detector-mode snapshot always carries these fields.
                    if let Some(det) = detector.as_mut() {
                        det.restore_state(state.require("detector").map_err(ckerr)?)
                            .map_err(ckerr)?;
                        detections = checkpoint::detections_from_state(
                            state.require("detections").map_err(ckerr)?,
                        )
                        .map_err(ckerr)?;
                    }
                }
                // Replay the journal past the snapshot. Proposals are
                // re-derived deterministically; measured outcomes,
                // recoveries and node moves come from the journal, and the
                // policy stack (breaker counts, retry RNG position, the
                // fallback's best sample, the simulated clock) restores
                // bit-exactly from the journaled state — nothing is
                // re-simulated, nothing is re-traced, and no RNG draw is
                // ever re-burned.
                let mut replayed = 0u32;
                for delta in &resumed.deltas {
                    let i = delta.field_u64("iteration").map_err(ckerr)? as u32;
                    if i != start {
                        return Err(SessionError::Checkpoint(format!(
                            "journal gap: expected iteration {start}, found {i}"
                        )));
                    }
                    let pc = servers[0].next_config();
                    let wc = servers[1].next_config();
                    let dc = servers[2].next_config();
                    let config = binding::config_from_roles(&topology, &pc, &wc, &dc);
                    let _ = config_summary(&config);
                    let valid = delta.field_bool("valid").map_err(ckerr)?;
                    let wips = delta.field_f64("wips").map_err(ckerr)?;
                    let line_wips = delta
                        .require("line_wips")
                        .and_then(State::to_f64_vec)
                        .map_err(ckerr)?;
                    let failed = delta.field_u64("failed").map_err(ckerr)?;
                    // The tuner was fed the measured value only when the
                    // sample was valid (degraded iterations journal the
                    // substituted WIPS but reported 0.0 to the tuner).
                    let reported = if valid { wips } else { 0.0 };
                    for s in &mut servers {
                        s.report(reported);
                    }
                    if valid && wips > best_wips {
                        best_wips = wips;
                        best_iter = i;
                    }
                    stack
                        .restore_state(delta.require("policy").map_err(ckerr)?)
                        .map_err(ckerr)?;
                    recoveries.extend(
                        checkpoint::recoveries_from_state(
                            delta.require("recoveries").map_err(ckerr)?,
                        )
                        .map_err(ckerr)?,
                    );
                    match delta.require("reconfig").map_err(ckerr)? {
                        State::Null => {}
                        event_state => {
                            let event =
                                checkpoint::reconfig_from_state(event_state).map_err(ckerr)?;
                            topology =
                                topology.reassign(event.node, event.to_tier).map_err(|e| {
                                    SessionError::Checkpoint(format!(
                                        "journaled reconfiguration does not apply: {e}"
                                    ))
                                })?;
                            reconfigs.push(event);
                        }
                    }
                    if let Some(det) = detector.as_mut() {
                        det.restore_state(delta.require("detector").map_err(ckerr)?)
                            .map_err(ckerr)?;
                        detections.extend(
                            checkpoint::detections_from_state(
                                delta.require("detections").map_err(ckerr)?,
                            )
                            .map_err(ckerr)?,
                        );
                    }
                    records.push(IterationRecord {
                        iteration: i,
                        wips,
                        line_wips,
                        workload: base.workload,
                        failed,
                    });
                    start += 1;
                    replayed += 1;
                }
                // The fault schedule is a pure function of the plan and
                // seed, so the log of already-covered windows rebuilds
                // statelessly (node count never changes across reassigns).
                if let Some(inj) = injector.as_ref() {
                    for i in 0..start {
                        let (ws, we) = FaultClock::window_of(base.plan.total(), i);
                        for e in &inj.window(ws, we, topology.len()).events {
                            fault_log.push((i, *e));
                        }
                    }
                }
                observer.record_resume(
                    "resilient",
                    start,
                    snapshot_iteration,
                    replayed,
                    best_wips.max(0.0),
                );
            }
            Some(ck)
        }
    };

    for i in start..iterations {
        let t0 = std::time::Instant::now();
        let cfg = base.clone().topology(topology.clone());
        let (win_start, win_end) = FaultClock::window_of(base.plan.total(), i);
        let wf = injector
            .as_ref()
            .map(|inj| inj.window(win_start, win_end, topology.len()));

        // Trace every fault landing in this window.
        if let Some(wf) = &wf {
            for e in &wf.events {
                fault_log.push((i, *e));
                observer.record_fault(
                    i,
                    e.at.as_secs_f64(),
                    e.node.map(|n| n as i64).unwrap_or(-1),
                    e.kind.name(),
                    e.kind.factor(),
                );
                if let Some(reg) = observer.registry() {
                    reg.counter("faults.injected").inc();
                }
            }
        }

        // Detector mode: observe the window's heartbeats *before*
        // evaluating, so the reconfiguration below acts on detected
        // membership, never the oracle. Every transition is scored
        // against the injector's ground truth as it happens.
        let det_mark = detections.len();
        let report = detector.as_mut().map(|det| {
            let inj = injector.as_ref().unwrap_or(&clean_injector);
            let report = det.observe_window(inj, win_start, win_end);
            if let Some(reg) = observer.registry() {
                reg.counter("detector.heartbeats").add(report.delivered);
                reg.counter("detector.missed").add(report.missed);
            }
            for (n, (&phi, state)) in report.peak_phi.iter().zip(&report.states).enumerate() {
                observer.record_suspicion(i, n, phi, state.name());
            }
            for t in &report.transitions {
                observer.record_membership(
                    i,
                    t.at.as_secs_f64(),
                    t.node,
                    t.from.name(),
                    t.to.name(),
                    t.phi,
                );
                let truth_crashed = injector.as_ref().is_some_and(|inj| {
                    inj.status_at(t.at, topology.len())
                        .get(t.node)
                        .map(|s| s.crashed)
                        .unwrap_or(false)
                });
                let latency_s = if t.to == NodeState::Down && truth_crashed {
                    fault_log
                        .iter()
                        .filter(|(_, e)| {
                            matches!(e.kind, faults::FaultKind::Crash)
                                && e.node == Some(t.node)
                                && e.at <= t.at
                        })
                        .map(|(_, e)| t.at.since(e.at).as_secs_f64())
                        .fold(f64::INFINITY, f64::min)
                } else {
                    f64::INFINITY
                };
                if let Some(reg) = observer.registry() {
                    reg.counter("detector.transitions").inc();
                    if t.to == NodeState::Down {
                        reg.counter(if truth_crashed {
                            "detector.true_positives"
                        } else {
                            "detector.false_positives"
                        })
                        .inc();
                    }
                }
                detections.push(DetectionEvent {
                    iteration: i,
                    node: t.node,
                    at_s: t.at.as_secs_f64(),
                    from: t.from.name(),
                    to: t.to.name(),
                    phi: t.phi,
                    truth_crashed,
                    latency_s: if latency_s.is_finite() {
                        latency_s
                    } else {
                        -1.0
                    },
                });
            }
            report
        });

        let pc = servers[0].next_config();
        let wc = servers[1].next_config();
        let dc = servers[2].next_config();
        let config = binding::config_from_roles(&topology, &pc, &wc, &dc);
        let key = config_summary(&config);
        let recov_mark = recoveries.len();
        let reconfig_mark = reconfigs.len();

        let registry = observer.registry();
        let outcome = stack.call(&key, i, &mut |ctx| {
            evaluate_attempt(
                &cfg,
                settings,
                &config,
                i,
                wf.as_ref(),
                injector.as_ref(),
                registry,
                ctx,
            )
        });
        let events = stack.take_events();
        apply_events(&events, i, &key, observer, &mut recoveries);

        let skip = matches!(outcome, Outcome::Rejected(_));
        let (wips, line_wips, failed, valid);
        match outcome {
            Outcome::Rejected(_) => {
                // Blacklisted configuration (or no bulkhead permit):
                // answer the proposal without re-measuring.
                for s in &mut servers {
                    s.report(0.0);
                }
                records.push(IterationRecord {
                    iteration: i,
                    wips: 0.0,
                    line_wips: Vec::new(),
                    workload: cfg.workload,
                    failed: 0,
                });
                wips = 0.0;
                line_wips = Vec::new();
                failed = 0;
                valid = false;
            }
            Outcome::Ok(sample) | Outcome::Invalid(sample) => {
                valid = sample.valid;
                let out = sample.value.out;
                wips = if valid { out.metrics.wips } else { 0.0 };
                for s in &mut servers {
                    s.report(wips);
                }
                if valid && wips > best_wips {
                    best_wips = wips;
                    best_iter = i;
                }
                observer.record_iteration(
                    &cfg,
                    "resilient",
                    i,
                    &config,
                    &out,
                    best_wips.max(0.0),
                    best_iter,
                    &servers[0].diagnostics(),
                    t0.elapsed().as_secs_f64() * 1e3,
                );
                records.push(IterationRecord {
                    iteration: i,
                    wips,
                    line_wips: out.line_wips.clone(),
                    workload: cfg.workload,
                    failed: out.total_failed,
                });
                reconfigure_if_crashed(
                    settings,
                    wf.as_ref(),
                    report.as_ref(),
                    injector.as_ref(),
                    win_end,
                    i,
                    &out,
                    wips,
                    &mut topology,
                    &mut recoveries,
                    &mut reconfigs,
                    observer,
                )?;
                line_wips = out.line_wips;
                failed = out.total_failed;
            }
            Outcome::Degraded(d) => {
                // Graceful degradation: the tuner still learns the
                // proposal was worthless, but downstream consumers see
                // the substituted best-known WIPS and the running best
                // is left untouched.
                for s in &mut servers {
                    s.report(0.0);
                }
                wips = d.sample.score;
                valid = false;
                match d.measured {
                    Some(m) => {
                        let out = m.value.out;
                        observer.record_iteration(
                            &cfg,
                            "resilient",
                            i,
                            &config,
                            &out,
                            best_wips.max(0.0),
                            best_iter,
                            &servers[0].diagnostics(),
                            t0.elapsed().as_secs_f64() * 1e3,
                        );
                        records.push(IterationRecord {
                            iteration: i,
                            wips,
                            line_wips: out.line_wips.clone(),
                            workload: cfg.workload,
                            failed: out.total_failed,
                        });
                        reconfigure_if_crashed(
                            settings,
                            wf.as_ref(),
                            report.as_ref(),
                            injector.as_ref(),
                            win_end,
                            i,
                            &out,
                            wips,
                            &mut topology,
                            &mut recoveries,
                            &mut reconfigs,
                            observer,
                        )?;
                        line_wips = out.line_wips;
                        failed = out.total_failed;
                    }
                    None => {
                        // Nothing was measured (rejection): no iteration
                        // record, no reconfiguration evidence.
                        records.push(IterationRecord {
                            iteration: i,
                            wips,
                            line_wips: Vec::new(),
                            workload: cfg.workload,
                            failed: 0,
                        });
                        line_wips = Vec::new();
                        failed = 0;
                    }
                }
            }
        }

        if let Some(ck) = ckpt.as_mut() {
            let reconfig = reconfigs
                .get(reconfig_mark)
                .map(checkpoint::reconfig_state)
                .unwrap_or(State::Null);
            let mut delta = State::map()
                .with("iteration", State::U64(i as u64))
                .with("skip", State::Bool(skip))
                .with("valid", State::Bool(valid))
                .with("wips", State::F64(wips))
                .with("line_wips", State::f64_list(&line_wips))
                .with("failed", State::U64(failed))
                .with("policy", stack.save_state())
                .with(
                    "recoveries",
                    checkpoint::recoveries_state(&recoveries[recov_mark..]),
                )
                .with("reconfig", reconfig);
            if let Some(det) = detector.as_ref() {
                delta.set("detector", det.save_state());
                delta.set(
                    "detections",
                    checkpoint::detections_state(&detections[det_mark..]),
                );
            }
            ck.append(delta)?;
            ck.maybe_snapshot(i + 1, iterations, || {
                let mut snap = resilient_snapshot(
                    &topology,
                    &servers,
                    &stack,
                    best_wips,
                    best_iter,
                    &records,
                    &recoveries,
                    &reconfigs,
                );
                if base.eval.cache_enabled() {
                    snap.set("eval_cache", base.eval.save_cache_state());
                }
                if let Some(det) = detector.as_ref() {
                    snap.set("detector", det.save_state());
                    snap.set("detections", checkpoint::detections_state(&detections));
                }
                snap
            })?;
        }
    }
    observer.flush();
    Ok(ResilientRun {
        records,
        faults: fault_log,
        recoveries,
        reconfigs,
        detections,
        final_topology: topology,
        best_wips: best_wips.max(0.0),
    })
}

/// Full mutable state of a resilient session, snapshot-ready. The whole
/// policy stack (breaker, retry RNG, clock, fallback best) travels as one
/// `policy` subtree.
#[allow(clippy::too_many_arguments)]
fn resilient_snapshot(
    topology: &Topology,
    servers: &[HarmonyServer; 3],
    stack: &Stack<EvalSample>,
    best_wips: f64,
    best_iter: u32,
    records: &[IterationRecord],
    recoveries: &[RecoveryAction],
    reconfigs: &[ReconfigEvent],
) -> State {
    State::map()
        .with("kind", State::Str("resilient".into()))
        .with("topology", checkpoint::topology_state(topology))
        .with(
            "servers",
            State::List(servers.iter().map(Checkpointable::save_state).collect()),
        )
        .with("policy", stack.save_state())
        .with("best_wips", State::F64(best_wips))
        .with("best_iteration", State::U64(best_iter as u64))
        .with("records", checkpoint::records_state(records))
        .with("recoveries", checkpoint::recoveries_state(recoveries))
        .with("reconfigs", checkpoint::reconfigs_state(reconfigs))
}

/// Map one stack call's event log onto `recovery`/`degraded` trace
/// records, `resilience.*` counters, and [`RecoveryAction`]s — in the
/// exact order the layers acted.
fn apply_events(
    events: &[Event],
    iteration: u32,
    key: &str,
    observer: &mut SessionObserver,
    recoveries: &mut Vec<RecoveryAction>,
) {
    let count = |observer: &SessionObserver, name: &str| {
        if let Some(reg) = observer.registry() {
            reg.counter(name).inc();
        }
    };
    for e in events {
        let (action, attempt, delay_s, wips) = match *e {
            Event::Retry {
                attempt,
                delay,
                score,
            } => ("retry", attempt, delay.as_secs_f64(), score),
            Event::Remeasure { attempt, score } => ("remeasure", attempt, 0.0, score),
            Event::Timeout {
                attempt,
                elapsed,
                score,
                ..
            } => ("timeout", attempt, elapsed.as_secs_f64(), score),
            Event::BreakerOpen { attempts } => ("breaker_open", attempts, 0.0, 0.0),
            Event::BreakerSkip => ("breaker_skip", 0, 0.0, 0.0),
            Event::BreakerProbe => ("breaker_probe", 0, 0.0, 0.0),
            Event::BulkheadFull => ("bulkhead_skip", 0, 0.0, 0.0),
            Event::Degraded { score, reason } => {
                observer.record_degraded(iteration, reason.name(), key, score);
                count(observer, "resilience.degraded");
                recoveries.push(RecoveryAction {
                    iteration,
                    action: "degraded",
                    attempt: 0,
                    delay_s: 0.0,
                    wips: score,
                });
                continue;
            }
        };
        observer.record_recovery(iteration, action, attempt, delay_s, key, wips);
        let counter = match *e {
            Event::Retry { .. } => "resilience.retries",
            Event::Remeasure { .. } => "resilience.remeasures",
            Event::Timeout { .. } => "resilience.timeouts",
            Event::BreakerOpen { .. } => "resilience.breaker_open",
            Event::BreakerSkip => "resilience.breaker_skips",
            Event::BreakerProbe => "resilience.breaker_probes",
            Event::BulkheadFull => "resilience.bulkhead_skips",
            Event::Degraded { .. } => unreachable!("handled above"),
        };
        count(observer, counter);
        recoveries.push(RecoveryAction {
            iteration,
            action,
            attempt,
            delay_s,
            wips,
        });
    }
}

/// One evaluation attempt, run by the policy stack. The first attempt is
/// the primary measurement (with outlier re-measurement when the window
/// is noise-spiked); retries see the post-crash steady state, like a real
/// re-measurement scheduled after the failure. Every attempt advances the
/// policy clock by the simulated time it consumed, which is what the
/// timeout layer budgets against.
#[allow(clippy::too_many_arguments)]
fn evaluate_attempt(
    cfg: &SessionConfig,
    settings: &ResilienceSettings,
    config: &ClusterConfig,
    iteration: u32,
    wf: Option<&WindowFaults>,
    injector: Option<&FaultInjector>,
    registry: Option<&Registry>,
    ctx: &mut Ctx<'_>,
) -> Sample<EvalSample> {
    if ctx.attempt <= 1 {
        let mut out = cfg.evaluate_observed(config.clone(), iteration, registry);

        // A crash inside the measurement phase invalidates the sample (the
        // paper's fixed-interval measurement assumes a stable cluster).
        let crashed_mid_measure = wf
            .map(|w| {
                w.crash_in(cfg.plan.warmup, cfg.plan.warmup + cfg.plan.measure)
                    .is_some()
            })
            .unwrap_or(false);
        let mut valid = !crashed_mid_measure && out.metrics.wips > 0.0;

        // Noise-spike re-measurement: the sample passes only if measured
        // WIPS is consistent with its own completion count.
        if valid {
            if let Some(w) = wf.filter(|w| w.noise > 1.0) {
                let measure_secs = cfg.plan.measure.as_secs_f64();
                if measure_secs > 0.0 {
                    let (start, _) = FaultClock::window_of(cfg.plan.total(), iteration);
                    let mut remeasures = 0;
                    while remeasures < settings.gate.max_remeasures {
                        let predicted = out.metrics.completed as f64 / measure_secs;
                        let deviation = (out.metrics.wips - predicted).abs();
                        if settings.gate.accepts(predicted, deviation) {
                            break;
                        }
                        remeasures += 1;
                        ctx.push(Event::Remeasure {
                            attempt: remeasures,
                            score: out.metrics.wips,
                        });
                        // Re-run the window and draw the next noise value (a
                        // re-measurement happens at a later session time).
                        let retry_cfg = cfg
                            .clone()
                            .base_seed(cfg.base_seed ^ remeasure_salt(remeasures));
                        out = retry_cfg
                            .eval
                            .run(&retry_cfg.scenario(config.clone(), iteration), registry);
                        if let Some(injector) = injector {
                            let shifted = start + SimDuration::from_micros(remeasures as u64);
                            let factor = injector.wips_noise(shifted, w.noise);
                            out.metrics.wips *= factor;
                            for lw in &mut out.line_wips {
                                *lw *= factor;
                            }
                        }
                    }
                    valid = out.metrics.wips > 0.0;
                }
            }
        }

        // The primary attempt holds the cluster for the full window, plus
        // any stalled seconds the fault plan injected into it.
        let stall_s = wf.map(|w| w.stall_s).unwrap_or(0.0);
        ctx.advance(
            cfg.plan
                .total()
                .saturating_add(SimDuration::from_secs_f64(stall_s)),
        );
        let score = out.metrics.wips;
        Sample {
            value: EvalSample {
                config: config.clone(),
                out,
            },
            valid,
            score,
        }
    } else {
        let retry_cfg = cfg
            .clone()
            .base_seed(cfg.base_seed ^ remeasure_salt(ctx.attempt));
        let mut scenario = retry_cfg.scenario(config.clone(), iteration);
        scenario.faults = steady_state_timeline(injector, cfg, iteration);
        let out = cfg.eval.run(&scenario, registry);
        let valid = out.metrics.wips > 0.0;
        // A retry re-measures in the post-crash steady state; it holds the
        // cluster for one more window but sees no further stalls.
        ctx.advance(cfg.plan.total());
        let score = out.metrics.wips;
        Sample {
            value: EvalSample {
                config: config.clone(),
                out,
            },
            valid,
            score,
        }
    }
}

/// Failure-driven reconfiguration: a failed node wounds a tier; try to
/// backfill it from the healthiest other tier.
///
/// In detector mode (`detected` is `Some`) the trigger is a *freshly
/// confirmed* `Down` transition and liveness is the detector's membership
/// view — the oracle is never consulted. Otherwise the trigger is the
/// injector's crash record for the window, and a session that observed a
/// crash without a resolvable injector is a [`SessionError::FaultPlan`]
/// (it used to silently assume every node healthy).
#[allow(clippy::too_many_arguments)]
fn reconfigure_if_crashed(
    settings: &ResilienceSettings,
    wf: Option<&WindowFaults>,
    detected: Option<&WindowReport>,
    injector: Option<&FaultInjector>,
    window_end: SimTime,
    iteration: u32,
    out: &IterationOutcome,
    wips: f64,
    topology: &mut Topology,
    recoveries: &mut Vec<RecoveryAction>,
    reconfigs: &mut Vec<ReconfigEvent>,
    observer: &mut SessionObserver,
) -> Result<(), SessionError> {
    if !settings.reconfigure_on_crash {
        return Ok(());
    }
    let (crashed, live) = match detected {
        Some(report) => (
            report.confirmed_down(),
            report
                .states
                .iter()
                .map(|s| *s != NodeState::Down)
                .collect::<Vec<bool>>(),
        ),
        None => {
            let Some(wf) = wf else {
                return Ok(());
            };
            let crashed = wf.crashes();
            if crashed.is_empty() {
                return Ok(());
            }
            let injector = injector.ok_or_else(|| {
                SessionError::FaultPlan(
                    "a crash was observed but the session has no resolvable fault plan to \
                     derive node health from"
                        .into(),
                )
            })?;
            let live = injector
                .health_at(window_end, topology.len())
                .iter()
                .map(|h| !h.is_down())
                .collect();
            (crashed, live)
        }
    };
    if crashed.is_empty() {
        return Ok(());
    }
    if let Some(event) = heal_after_crash(
        settings, topology, &crashed, iteration, out, &live, observer,
    ) {
        if let Ok(next) = topology.reassign(event.node, event.to_tier) {
            *topology = next;
            recoveries.push(RecoveryAction {
                iteration,
                action: "reconfig",
                attempt: 0,
                delay_s: 0.0,
                wips,
            });
            reconfigs.push(event);
        }
    }
    Ok(())
}

/// Decorrelate retry/re-measurement seeds from the primary sample.
fn remeasure_salt(attempt: u32) -> u64 {
    (attempt as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Node healths once every fault up to the end of iteration `i`'s window
/// has applied — what a re-measurement after the crash would see.
fn steady_state_timeline(
    injector: Option<&FaultInjector>,
    cfg: &SessionConfig,
    iteration: u32,
) -> Option<HealthTimeline> {
    let injector = injector?;
    let (_, end) = FaultClock::window_of(cfg.plan.total(), iteration);
    let timeline = HealthTimeline {
        initial: injector.health_at(end, cfg.topology.len()),
        changes: Vec::new(),
    };
    (!timeline.is_trivial()).then_some(timeline)
}

/// Pick a node move that backfills a tier wounded by a crash. Tries the
/// §IV `decide()` algorithm over the live nodes first; if the cost model
/// declines, pulls a spare from the best-staffed other tier directly.
#[allow(clippy::too_many_arguments)]
fn heal_after_crash(
    settings: &ResilienceSettings,
    topology: &Topology,
    crashed: &[usize],
    iteration: u32,
    out: &IterationOutcome,
    live_nodes: &[bool],
    observer: &mut SessionObserver,
) -> Option<ReconfigEvent> {
    let wounded_tier = topology.role(*crashed.first()?);
    let live = |n: usize| live_nodes.get(n).copied().unwrap_or(false);
    let live_count = |t: Role| {
        (0..topology.len())
            .filter(|&n| topology.role(n) == t && live(n))
            .count()
    };

    // §IV decide() over the live nodes, with tier sizes that reflect the
    // crash (the wounded tier really is smaller now).
    let reports: Vec<NodeReport<Role>> = (0..topology.len())
        .filter(|&n| live(n))
        .map(|n| {
            let u = &out.node_utilization[n];
            NodeReport {
                node: n,
                tier: topology.role(n),
                util: UtilizationSnapshot {
                    cpu: u.cpu,
                    disk: u.disk,
                    net: u.net,
                    mem: u.mem,
                },
                cost: NodeCostInputs {
                    jobs: 2.0 + 30.0 * u.cpu.max(u.disk),
                    move_cost: 0.2,
                    avg_process_time: 0.8,
                },
            }
        })
        .collect();
    let decision = decide(
        &reports,
        &settings.thresholds,
        &settings.cost_model,
        live_count,
    );
    let (node, to_tier, immediate, cost_value) = match decision {
        Some(d) if d.to_tier == wounded_tier => (d.node, d.to_tier, d.immediate, d.cost_value),
        _ => {
            // Direct spare-pull: the idlest live node outside the wounded
            // tier, from a tier that can spare one.
            let peak = |n: usize| {
                let u = &out.node_utilization[n];
                u.cpu.max(u.disk).max(u.net)
            };
            let donor = (0..topology.len())
                .filter(|&n| {
                    let t = topology.role(n);
                    t != wounded_tier && live(n) && live_count(t) > 1
                })
                .min_by(|&a, &b| peak(a).total_cmp(&peak(b)).then(a.cmp(&b)))?;
            (donor, wounded_tier, true, 0.0)
        }
    };
    let from_tier = topology.role(node);
    observer.record_reconfig(
        iteration,
        node,
        from_tier.name(),
        to_tier.name(),
        immediate,
        cost_value,
    );
    observer.record_recovery(iteration, "reconfig", 0, 0.0, &format!("node {node}"), 0.0);
    if let Some(reg) = observer.registry() {
        reg.counter("resilience.reconfigs").inc();
    }
    Some(ReconfigEvent {
        iteration,
        node,
        from_tier,
        to_tier,
        immediate,
        cost_value,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use faults::FaultPlan;
    use tpcw::metrics::IntervalPlan;
    use tpcw::mix::Workload;

    fn base(topology: Topology, pop: u32) -> SessionConfig {
        SessionConfig::new(topology, Workload::Shopping, pop).plan(IntervalPlan::tiny())
    }

    #[test]
    fn fault_free_resilient_session_behaves_like_tuning() {
        let cfg = base(Topology::tiers(1, 2, 1).unwrap(), 300).pin_seed(true);
        let run = run_resilient_session(&cfg, &ResilienceSettings::default(), 4).expect("run");
        assert_eq!(run.records.len(), 4);
        assert!(run.faults.is_empty());
        assert!(run.recoveries.is_empty());
        assert!(run.reconfigs.is_empty());
        assert!(run.best_wips > 0.0);
    }

    #[test]
    fn invalid_plan_is_reported_not_panicked() {
        let cfg = base(Topology::single(), 200).fault_plan(FaultPlan::new().crash(1.0, 99));
        let err = run_resilient_session(&cfg, &ResilienceSettings::default(), 2).unwrap_err();
        assert!(matches!(err, SessionError::FaultPlan(_)), "{err:?}");
    }

    #[test]
    fn crash_mid_measurement_triggers_retries() {
        // tiny plan: 5s warmup, 20s measure. Crash the only app node of
        // line 2 early in iteration 1's measurement phase.
        let total = IntervalPlan::tiny().total().as_secs_f64();
        let crash_at = total + 7.0;
        let cfg = base(Topology::tiers(1, 2, 1).unwrap(), 300)
            .pin_seed(true)
            .fault_plan(FaultPlan::new().crash(crash_at, 1));
        let run = run_resilient_session(&cfg, &ResilienceSettings::default(), 3).expect("run");
        assert_eq!(run.first_crash_iteration(), Some(1));
        assert!(
            run.recoveries.iter().any(|r| r.action == "retry"),
            "expected a retry: {:?}",
            run.recoveries
        );
        // The retry saw the post-crash steady state (node 1 down, node 2
        // still serving), so the session kept a usable sample.
        assert!(run.records[1].wips > 0.0, "retried sample is usable");
    }

    #[test]
    fn total_blackout_opens_the_breaker() {
        // The only proxy node crashes before iteration 0's window ends
        // and never restarts: every evaluation measures zero.
        let cfg = base(Topology::tiers(1, 1, 1).unwrap(), 150)
            .pin_seed(true)
            .fault_plan(FaultPlan::new().crash(0.5, 0));
        let settings = ResilienceSettings {
            breaker_threshold: 1,
            ..Default::default()
        };
        let run = run_resilient_session(&cfg, &settings, 3).expect("run");
        assert!(run.records.iter().all(|r| r.wips == 0.0));
        assert!(
            run.recoveries.iter().any(|r| r.action == "breaker_open"),
            "{:?}",
            run.recoveries
        );
        assert_eq!(run.best_wips, 0.0);
    }

    #[test]
    fn breaker_open_reports_the_actual_attempt_count() {
        let cfg = base(Topology::tiers(1, 1, 1).unwrap(), 150)
            .pin_seed(true)
            .fault_plan(FaultPlan::new().crash(0.5, 0));
        // Only one attempt allowed: the trip must report 1, not a larger
        // policy maximum.
        let settings = ResilienceSettings {
            breaker_threshold: 1,
            retry: RetryPolicy {
                max_attempts: 1,
                ..Default::default()
            },
            ..Default::default()
        };
        let run = run_resilient_session(&cfg, &settings, 2).expect("run");
        let trip = run
            .recoveries
            .iter()
            .find(|r| r.action == "breaker_open")
            .expect("breaker must trip");
        assert_eq!(trip.attempt, 1, "actual attempts, not the policy max");
    }

    #[test]
    fn stall_blows_the_timeout_budget_and_is_retried() {
        // A stall longer than the per-attempt budget: the first attempt
        // times out, the retry (no stall) passes.
        let total = IntervalPlan::tiny().total().as_secs_f64();
        let cfg = base(Topology::tiers(1, 2, 1).unwrap(), 300)
            .pin_seed(true)
            .fault_plan(FaultPlan::new().stall(total + 2.0, 1, total));
        let settings = ResilienceSettings {
            timeout_s: Some(total * 1.5),
            ..Default::default()
        };
        let run = run_resilient_session(&cfg, &settings, 3).expect("run");
        assert!(
            run.recoveries.iter().any(|r| r.action == "timeout"),
            "expected a timeout: {:?}",
            run.recoveries
        );
        assert!(
            run.recoveries.iter().any(|r| r.action == "retry"),
            "the timed-out attempt is retried: {:?}",
            run.recoveries
        );
        // Stalls are not crashes: nothing to reconfigure.
        assert!(run.reconfigs.is_empty());
        assert!(run.records[1].wips > 0.0, "retried sample is usable");
    }

    #[test]
    fn degradation_substitutes_best_known_wips() {
        // Iterations 0 is healthy; the blackout from iteration 1 on would
        // zero every later record, but degradation holds the best-known
        // WIPS instead while the tuner still learns the truth.
        let total = IntervalPlan::tiny().total().as_secs_f64();
        let cfg = base(Topology::tiers(1, 1, 1).unwrap(), 150)
            .pin_seed(true)
            .fault_plan(FaultPlan::new().crash(total + 0.5, 0));
        let settings = ResilienceSettings {
            breaker_threshold: 1,
            degrade_to_best: true,
            reconfigure_on_crash: false,
            ..Default::default()
        };
        let run = run_resilient_session(&cfg, &settings, 4).expect("run");
        assert!(run.records[0].wips > 0.0, "healthy baseline");
        let best = run.records[0].wips.max(run.best_wips);
        for r in &run.records[1..] {
            assert!(
                (r.wips - best).abs() < 1e-9 || r.wips <= best,
                "degraded record within best-known bounds: {} vs {best}",
                r.wips
            );
            assert!(r.wips > 0.0, "degraded, not zeroed: {r:?}");
        }
        assert!(
            run.recoveries.iter().any(|r| r.action == "degraded"),
            "{:?}",
            run.recoveries
        );
        assert_eq!(run.best_wips, run.records[0].wips, "best never degrades");
    }

    #[test]
    fn crash_pulls_a_spare_into_the_wounded_tier() {
        let total = IntervalPlan::tiny().total().as_secs_f64();
        // Node 2 (app tier) crashes during iteration 1.
        let cfg = base(Topology::tiers(2, 2, 2).unwrap(), 400)
            .pin_seed(true)
            .fault_plan(FaultPlan::new().crash(total + 2.0, 2));
        let run = run_resilient_session(&cfg, &ResilienceSettings::default(), 4).expect("run");
        assert_eq!(run.reconfigs.len(), 1, "{:?}", run.reconfigs);
        let e = &run.reconfigs[0];
        assert_eq!(e.to_tier, Role::App);
        assert_ne!(e.node, 2, "the dead node cannot be the donor");
        assert_eq!(run.final_topology.count(Role::App), 3);
    }

    fn detector_settings() -> ResilienceSettings {
        ResilienceSettings {
            detector: Some(DetectorConfig::default()),
            ..Default::default()
        }
    }

    #[test]
    fn detector_mode_confirms_the_crash_and_heals_without_the_oracle() {
        let total = IntervalPlan::tiny().total().as_secs_f64();
        let cfg = base(Topology::tiers(2, 2, 2).unwrap(), 400)
            .pin_seed(true)
            .fault_plan(FaultPlan::new().crash(total + 2.0, 2));
        let run = run_resilient_session(&cfg, &detector_settings(), 4).expect("run");
        // The detector confirmed node 2 Down from heartbeat silence alone.
        let down: Vec<_> = run.detections.iter().filter(|d| d.is_down()).collect();
        assert_eq!(down.len(), 1, "{:?}", run.detections);
        assert_eq!(down[0].node, 2);
        assert!(down[0].truth_crashed, "scored against ground truth");
        assert!(
            down[0].latency_s > 0.0 && down[0].latency_s < 15.0,
            "detection latency {}s",
            down[0].latency_s
        );
        assert_eq!(run.detection_false_positives(), 0);
        assert!(run.mean_detection_latency_s().is_some());
        // And the detected membership gated the same §IV recovery the
        // oracle used to: a spare was pulled into the wounded tier.
        assert_eq!(run.reconfigs.len(), 1, "{:?}", run.reconfigs);
        assert_eq!(run.reconfigs[0].to_tier, Role::App);
        assert_ne!(run.reconfigs[0].node, 2);
        assert_eq!(run.final_topology.count(Role::App), 3);
    }

    #[test]
    fn detector_mode_is_deterministic() {
        let total = IntervalPlan::tiny().total().as_secs_f64();
        let cfg = base(Topology::tiers(1, 2, 1).unwrap(), 300)
            .pin_seed(true)
            .fault_plan(
                FaultPlan::new()
                    .crash(total + 7.0, 1)
                    .stall(2.0 * total + 5.0, 2, 2.0),
            );
        let a = run_resilient_session(&cfg, &detector_settings(), 4).expect("a");
        let b = run_resilient_session(&cfg, &detector_settings(), 4).expect("b");
        assert_eq!(a.detections, b.detections);
        assert_eq!(a.wips_series(), b.wips_series());
        assert_eq!(a.reconfigs.len(), b.reconfigs.len());
    }

    #[test]
    fn detector_without_a_fault_plan_observes_clean_heartbeats() {
        let cfg = base(Topology::tiers(1, 2, 1).unwrap(), 300).pin_seed(true);
        let run = run_resilient_session(&cfg, &detector_settings(), 3).expect("run");
        assert!(run.detections.is_empty(), "{:?}", run.detections);
        assert!(run.reconfigs.is_empty());
        assert!(run.best_wips > 0.0);
    }

    #[test]
    fn a_short_stall_never_reconfigures_in_detector_mode() {
        let total = IntervalPlan::tiny().total().as_secs_f64();
        let cfg = base(Topology::tiers(1, 2, 1).unwrap(), 300)
            .pin_seed(true)
            .fault_plan(FaultPlan::new().stall(total + 5.0, 1, 2.0));
        let run = run_resilient_session(&cfg, &detector_settings(), 3).expect("run");
        assert!(
            !run.detections.iter().any(|d| d.is_down()),
            "a 2s stall must not be believed dead: {:?}",
            run.detections
        );
        assert!(run.reconfigs.is_empty());
    }

    #[test]
    fn a_long_stall_is_a_scored_false_positive() {
        // A 12s freeze exceeds what the default thresholds tolerate: the
        // detector believes the node dead — and the ground-truth scoring
        // records exactly that honesty gap.
        let total = IntervalPlan::tiny().total().as_secs_f64();
        let cfg = base(Topology::tiers(1, 2, 1).unwrap(), 300)
            .pin_seed(true)
            .fault_plan(FaultPlan::new().stall(total + 5.0, 1, 12.0));
        let run = run_resilient_session(&cfg, &detector_settings(), 3).expect("run");
        assert!(run.detection_false_positives() >= 1, "{:?}", run.detections);
        // The node thaws and its beats resume: membership recovers.
        assert!(
            run.detections.iter().any(|d| d.to == "up"),
            "{:?}",
            run.detections
        );
    }
}
