//! Fault-tolerant tuning sessions: retry, re-measurement, circuit
//! breaking, and failure-driven reconfiguration.
//!
//! A resilient session is the §III duplication loop hardened against the
//! faults a [`faults::FaultPlan`] injects. Iteration `i` covers simulated
//! time `[i·plan.total(), (i+1)·plan.total())` of the fault schedule
//! ([`faults::FaultClock::window_of`]). Per iteration:
//!
//! 1. faults landing in the window are traced (`fault` records) and
//!    applied inside the DES via the scenario's health timeline;
//! 2. a sample invalidated by a crash during the *measurement* phase (or
//!    one that measured zero throughput) is retried with bounded,
//!    jittered backoff — the retry sees the post-crash steady state, as a
//!    real re-measurement would;
//! 3. a sample whose measured WIPS deviates wildly from its completion
//!    count (a measurement-noise spike) is re-measured through the
//!    [`OutlierGate`];
//! 4. a configuration that exhausts its retry budget is reported to
//!    Harmony as worthless (0.0 — the proposal is always answered) and
//!    counted against a per-configuration [`CircuitBreaker`]; a
//!    blacklisted configuration is rejected without re-measuring;
//! 5. a crash triggers the §IV `decide()` path over the *live* nodes; if
//!    the cost model declines, a spare node is pulled directly into the
//!    wounded tier so the cluster heals anyway.
//!
//! Retry delays are simulated time (deterministic jitter from the fault
//! seed); they are reported in `recovery` trace records but do not shift
//! the window mapping, which stays iteration-indexed.

use crate::binding;
use crate::checkpoint::{self, Checkpointer};
use crate::reconfigure::ReconfigEvent;
use crate::session::{
    ckerr, config_summary, tuner_seed, IterationRecord, SessionConfig, SessionError,
    SessionObserver,
};
use cluster::config::{ClusterConfig, Role, Topology};
use cluster::runner::IterationOutcome;
use faults::{FaultClock, FaultEvent, FaultInjector, Health, HealthTimeline, WindowFaults};
use harmony::monitor::UtilizationSnapshot;
use harmony::reconfig::{decide, CostModel, NodeCostInputs, NodeReport, Thresholds};
use harmony::resilience::{CircuitBreaker, OutlierGate, RetryPolicy};
use harmony::server::HarmonyServer;
use persist::{Checkpointable, State};
use simkit::rng::SimRng;
use simkit::time::SimDuration;

/// Policy knobs of a resilient session.
#[derive(Debug, Clone)]
pub struct ResilienceSettings {
    /// Bounded retry with backoff for invalid samples.
    pub retry: RetryPolicy,
    /// Re-measurement gate for noise-spiked samples.
    pub gate: OutlierGate,
    /// Failed evaluations of one configuration before it is blacklisted.
    pub breaker_threshold: u32,
    /// Pull a spare node into a tier that lost one to a crash.
    pub reconfigure_on_crash: bool,
    /// Utilization thresholds for the `decide()` attempt.
    pub thresholds: Thresholds,
    /// Cost model for the `decide()` attempt.
    pub cost_model: CostModel,
}

impl Default for ResilienceSettings {
    fn default() -> Self {
        ResilienceSettings {
            retry: RetryPolicy::default(),
            gate: OutlierGate::default(),
            breaker_threshold: 3,
            reconfigure_on_crash: true,
            thresholds: Thresholds::default(),
            cost_model: CostModel::default(),
        }
    }
}

/// One resilience action taken during the run (mirrors the `recovery`
/// trace records).
#[derive(Debug, Clone)]
pub struct RecoveryAction {
    pub iteration: u32,
    /// `retry`, `remeasure`, `breaker_open`, `breaker_skip`, `reconfig`.
    pub action: &'static str,
    pub attempt: u32,
    /// Simulated backoff delay, seconds (0 when not a retry).
    pub delay_s: f64,
    /// WIPS of the sample that triggered or resolved the action.
    pub wips: f64,
}

/// Result of a resilient tuning session.
#[derive(Debug, Clone)]
pub struct ResilientRun {
    pub records: Vec<IterationRecord>,
    /// Fault events injected, tagged with the iteration they hit.
    pub faults: Vec<(u32, FaultEvent)>,
    /// Resilience actions taken, in order.
    pub recoveries: Vec<RecoveryAction>,
    /// Failure-driven node moves.
    pub reconfigs: Vec<ReconfigEvent>,
    pub final_topology: Topology,
    pub best_wips: f64,
}

impl ResilientRun {
    /// Per-iteration WIPS series.
    pub fn wips_series(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.wips).collect()
    }

    /// Best WIPS seen strictly before `iteration`.
    pub fn running_best_before(&self, iteration: u32) -> f64 {
        self.records
            .iter()
            .filter(|r| r.iteration < iteration)
            .map(|r| r.wips)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Iteration of the first crash, if the plan had one.
    pub fn first_crash_iteration(&self) -> Option<u32> {
        self.faults
            .iter()
            .find(|(_, e)| matches!(e.kind, faults::FaultKind::Crash))
            .map(|(i, _)| *i)
    }

    /// How many iterations after the first crash WIPS first reached
    /// `frac` of the pre-crash running best (`None`: never, or no crash).
    pub fn recovery_iterations(&self, frac: f64) -> Option<u32> {
        let crash = self.first_crash_iteration()?;
        let target = self.running_best_before(crash) * frac;
        self.records
            .iter()
            .filter(|r| r.iteration > crash)
            .find(|r| r.wips >= target)
            .map(|r| r.iteration - crash)
    }
}

/// Run a resilient duplication-tuning session under a fault plan.
pub fn run_resilient_session(
    base: &SessionConfig,
    settings: &ResilienceSettings,
    iterations: u32,
) -> Result<ResilientRun, SessionError> {
    run_resilient_session_observed(base, settings, iterations, &mut SessionObserver::none())
}

/// [`run_resilient_session`] with trace/metrics observation: `iteration`
/// records as usual, plus `fault` and `recovery` records and the
/// `faults.injected` / `resilience.*` counters.
pub fn run_resilient_session_observed(
    base: &SessionConfig,
    settings: &ResilienceSettings,
    iterations: u32,
    observer: &mut SessionObserver,
) -> Result<ResilientRun, SessionError> {
    base.validate_faults()?;
    let mut topology = base.topology.clone();
    // Tier servers run the session's configured tuning algorithm,
    // resolved through the harmony registry exactly like plain tuning.
    let tier_tuner = |space, index| {
        harmony::registry::make_tuner_seeded(&base.tuner, space, None, tuner_seed(base, index))
            .map_err(|e| SessionError::UnknownTuner(e.to_string()))
    };
    let mut servers = [
        HarmonyServer::new(
            "proxy-tier",
            tier_tuner(binding::role_space(Role::Proxy), 0)?,
        ),
        HarmonyServer::new("web-tier", tier_tuner(binding::role_space(Role::App), 1)?),
        HarmonyServer::new("db-tier", tier_tuner(binding::role_space(Role::Db), 2)?),
    ];
    let mut breaker = CircuitBreaker::new(settings.breaker_threshold);
    let mut jitter_rng = SimRng::new(base.fault_seed ^ 0xBACC_0FF5);
    let mut records = Vec::with_capacity(iterations as usize);
    let mut fault_log = Vec::new();
    let mut recoveries = Vec::new();
    let mut reconfigs = Vec::new();
    let mut best_wips = f64::NEG_INFINITY;
    let mut best_iter = 0;
    let mut start = 0u32;

    let mut ckpt = match base.checkpoint.as_ref() {
        None => None,
        Some(policy) => {
            let fp = checkpoint::session_fingerprint(
                base,
                &format!("resilient/{settings:?}"),
                iterations,
                iterations,
            );
            let (ck, resumed) = Checkpointer::open(policy, fp)?;
            if let Some(resumed) = resumed {
                let mut snapshot_iteration: i64 = -1;
                if let Some((snap_iter, state)) = resumed.snapshot.as_ref() {
                    snapshot_iteration = *snap_iter as i64;
                    start = *snap_iter as u32;
                    topology =
                        checkpoint::topology_from_state(state.require("topology").map_err(ckerr)?)
                            .map_err(ckerr)?;
                    let saved = state.field_list("servers").map_err(ckerr)?;
                    if saved.len() != servers.len() {
                        return Err(SessionError::Checkpoint(format!(
                            "resilient snapshot expects {} server states, found {}",
                            servers.len(),
                            saved.len()
                        )));
                    }
                    for (server, st) in servers.iter_mut().zip(saved) {
                        server.restore_state(st).map_err(ckerr)?;
                    }
                    breaker
                        .restore_state(state.require("breaker").map_err(ckerr)?)
                        .map_err(ckerr)?;
                    jitter_rng = SimRng::from_state(rng_words_from_state(
                        state.require("jitter_rng").map_err(ckerr)?,
                    )?);
                    best_wips = state.field_f64("best_wips").map_err(ckerr)?;
                    best_iter = state.field_u64("best_iteration").map_err(ckerr)? as u32;
                    records =
                        checkpoint::records_from_state(state.require("records").map_err(ckerr)?)
                            .map_err(ckerr)?;
                    recoveries = checkpoint::recoveries_from_state(
                        state.require("recoveries").map_err(ckerr)?,
                    )
                    .map_err(ckerr)?;
                    reconfigs = checkpoint::reconfigs_from_state(
                        state.require("reconfigs").map_err(ckerr)?,
                    )
                    .map_err(ckerr)?;
                    // Warm the evaluation cache from the snapshot (older
                    // snapshots — or cache-off sessions — lack the field).
                    if let Some(cached) = state.get("eval_cache") {
                        base.eval.restore_cache(cached).map_err(ckerr)?;
                    }
                }
                // Replay the journal past the snapshot. Proposals are
                // re-derived deterministically; measured outcomes, retry
                // counts, recoveries and node moves come from the journal
                // — nothing is re-simulated and nothing is re-traced.
                let mut replayed = 0u32;
                for delta in &resumed.deltas {
                    let i = delta.field_u64("iteration").map_err(ckerr)? as u32;
                    if i != start {
                        return Err(SessionError::Checkpoint(format!(
                            "journal gap: expected iteration {start}, found {i}"
                        )));
                    }
                    let pc = servers[0].next_config();
                    let wc = servers[1].next_config();
                    let dc = servers[2].next_config();
                    let config = binding::config_from_roles(&topology, &pc, &wc, &dc);
                    let key = config_summary(&config);
                    let skip = delta.field_bool("skip").map_err(ckerr)?;
                    let valid = delta.field_bool("valid").map_err(ckerr)?;
                    let wips = delta.field_f64("wips").map_err(ckerr)?;
                    let line_wips = delta
                        .require("line_wips")
                        .and_then(State::to_f64_vec)
                        .map_err(ckerr)?;
                    let failed = delta.field_u64("failed").map_err(ckerr)?;
                    if skip {
                        for s in &mut servers {
                            s.report(0.0);
                        }
                    } else {
                        // The live run drew one jitter value per retry;
                        // replay the same draws to keep the stream aligned.
                        let retries = delta.field_u64("retries").map_err(ckerr)? as u32;
                        for attempt in 1..=retries {
                            let _ = settings.retry.delay(attempt, &mut jitter_rng);
                        }
                        for s in &mut servers {
                            s.report(wips);
                        }
                        if valid {
                            breaker.record_success(&key);
                            if wips > best_wips {
                                best_wips = wips;
                                best_iter = i;
                            }
                        } else {
                            let _ = breaker.record_failure(&key);
                        }
                    }
                    recoveries.extend(
                        checkpoint::recoveries_from_state(
                            delta.require("recoveries").map_err(ckerr)?,
                        )
                        .map_err(ckerr)?,
                    );
                    match delta.require("reconfig").map_err(ckerr)? {
                        State::Null => {}
                        event_state => {
                            let event =
                                checkpoint::reconfig_from_state(event_state).map_err(ckerr)?;
                            topology =
                                topology.reassign(event.node, event.to_tier).map_err(|e| {
                                    SessionError::Checkpoint(format!(
                                        "journaled reconfiguration does not apply: {e}"
                                    ))
                                })?;
                            reconfigs.push(event);
                        }
                    }
                    records.push(IterationRecord {
                        iteration: i,
                        wips,
                        line_wips,
                        workload: base.workload,
                        failed,
                    });
                    start += 1;
                    replayed += 1;
                }
                // The fault schedule is a pure function of the plan and
                // seed, so the log of already-covered windows rebuilds
                // statelessly (node count never changes across reassigns).
                for i in 0..start {
                    if let Some(wf) = base.fault_window(i) {
                        for e in &wf.events {
                            fault_log.push((i, *e));
                        }
                    }
                }
                observer.record_resume(
                    "resilient",
                    start,
                    snapshot_iteration,
                    replayed,
                    best_wips.max(0.0),
                );
            }
            Some(ck)
        }
    };

    for i in start..iterations {
        let t0 = std::time::Instant::now();
        let cfg = base.clone().topology(topology.clone());
        let wf = cfg.fault_window(i);

        // Trace every fault landing in this window.
        if let Some(wf) = &wf {
            for e in &wf.events {
                fault_log.push((i, *e));
                observer.record_fault(
                    i,
                    e.at.as_secs_f64(),
                    e.node.map(|n| n as i64).unwrap_or(-1),
                    e.kind.name(),
                    e.kind.factor(),
                );
                if let Some(reg) = observer.registry() {
                    reg.counter("faults.injected").inc();
                }
            }
        }

        let pc = servers[0].next_config();
        let wc = servers[1].next_config();
        let dc = servers[2].next_config();
        let config = binding::config_from_roles(&topology, &pc, &wc, &dc);
        let key = config_summary(&config);
        let recov_mark = recoveries.len();
        let reconfig_mark = reconfigs.len();
        let skip = breaker.is_open(&key);
        let (wips, line_wips, failed, valid);

        if skip {
            // Blacklisted configuration: answer the proposal without
            // re-measuring.
            for s in &mut servers {
                s.report(0.0);
            }
            observer.record_recovery(i, "breaker_skip", 0, 0.0, &key, 0.0);
            if let Some(reg) = observer.registry() {
                reg.counter("resilience.breaker_skips").inc();
            }
            recoveries.push(RecoveryAction {
                iteration: i,
                action: "breaker_skip",
                attempt: 0,
                delay_s: 0.0,
                wips: 0.0,
            });
            records.push(IterationRecord {
                iteration: i,
                wips: 0.0,
                line_wips: Vec::new(),
                workload: cfg.workload,
                failed: 0,
            });
            wips = 0.0;
            line_wips = Vec::new();
            failed = 0;
            valid = false;
        } else {
            let (out, out_valid) = evaluate_with_retries(
                &cfg,
                settings,
                &config,
                &key,
                i,
                wf.as_ref(),
                &mut jitter_rng,
                observer,
                &mut recoveries,
            );
            valid = out_valid;
            wips = if valid { out.metrics.wips } else { 0.0 };
            for s in &mut servers {
                s.report(wips);
            }
            if valid {
                breaker.record_success(&key);
                if wips > best_wips {
                    best_wips = wips;
                    best_iter = i;
                }
            } else if breaker.record_failure(&key) {
                observer.record_recovery(
                    i,
                    "breaker_open",
                    settings.retry.max_attempts,
                    0.0,
                    &key,
                    0.0,
                );
                if let Some(reg) = observer.registry() {
                    reg.counter("resilience.breaker_open").inc();
                }
                recoveries.push(RecoveryAction {
                    iteration: i,
                    action: "breaker_open",
                    attempt: settings.retry.max_attempts,
                    delay_s: 0.0,
                    wips: 0.0,
                });
            }

            observer.record_iteration(
                &cfg,
                "resilient",
                i,
                &config,
                &out,
                best_wips.max(0.0),
                best_iter,
                &servers[0].diagnostics(),
                t0.elapsed().as_secs_f64() * 1e3,
            );
            records.push(IterationRecord {
                iteration: i,
                wips,
                line_wips: out.line_wips.clone(),
                workload: cfg.workload,
                failed: out.total_failed,
            });

            // Failure-driven reconfiguration: a crash in this window wounds a
            // tier; try to backfill it from the healthiest other tier.
            if settings.reconfigure_on_crash {
                if let Some(wf) = &wf {
                    let crashed = wf.crashes();
                    if !crashed.is_empty() {
                        if let Some(event) =
                            heal_after_crash(&cfg, settings, &topology, &crashed, i, &out, observer)
                        {
                            if let Ok(next) = topology.reassign(event.node, event.to_tier) {
                                topology = next;
                                recoveries.push(RecoveryAction {
                                    iteration: i,
                                    action: "reconfig",
                                    attempt: 0,
                                    delay_s: 0.0,
                                    wips,
                                });
                                reconfigs.push(event);
                            }
                        }
                    }
                }
            }
            line_wips = out.line_wips;
            failed = out.total_failed;
        }

        if let Some(ck) = ckpt.as_mut() {
            let retries = recoveries[recov_mark..]
                .iter()
                .filter(|r| r.action == "retry")
                .count() as u64;
            let reconfig = reconfigs
                .get(reconfig_mark)
                .map(checkpoint::reconfig_state)
                .unwrap_or(State::Null);
            ck.append(
                State::map()
                    .with("iteration", State::U64(i as u64))
                    .with("skip", State::Bool(skip))
                    .with("valid", State::Bool(valid))
                    .with("wips", State::F64(wips))
                    .with("line_wips", State::f64_list(&line_wips))
                    .with("failed", State::U64(failed))
                    .with("retries", State::U64(retries))
                    .with(
                        "recoveries",
                        checkpoint::recoveries_state(&recoveries[recov_mark..]),
                    )
                    .with("reconfig", reconfig),
            )?;
            ck.maybe_snapshot(i + 1, iterations, || {
                let mut snap = resilient_snapshot(
                    &topology,
                    &servers,
                    &breaker,
                    &jitter_rng,
                    best_wips,
                    best_iter,
                    &records,
                    &recoveries,
                    &reconfigs,
                );
                if base.eval.cache_enabled() {
                    snap.set("eval_cache", base.eval.save_cache_state());
                }
                snap
            })?;
        }
    }
    observer.flush();
    Ok(ResilientRun {
        records,
        faults: fault_log,
        recoveries,
        reconfigs,
        final_topology: topology,
        best_wips: best_wips.max(0.0),
    })
}

/// Full mutable state of a resilient session, snapshot-ready.
#[allow(clippy::too_many_arguments)]
fn resilient_snapshot(
    topology: &Topology,
    servers: &[HarmonyServer; 3],
    breaker: &CircuitBreaker,
    jitter_rng: &SimRng,
    best_wips: f64,
    best_iter: u32,
    records: &[IterationRecord],
    recoveries: &[RecoveryAction],
    reconfigs: &[ReconfigEvent],
) -> State {
    State::map()
        .with("kind", State::Str("resilient".into()))
        .with("topology", checkpoint::topology_state(topology))
        .with(
            "servers",
            State::List(servers.iter().map(Checkpointable::save_state).collect()),
        )
        .with("breaker", breaker.save_state())
        .with(
            "jitter_rng",
            State::List(jitter_rng.state().iter().map(|&w| State::U64(w)).collect()),
        )
        .with("best_wips", State::F64(best_wips))
        .with("best_iteration", State::U64(best_iter as u64))
        .with("records", checkpoint::records_state(records))
        .with("recoveries", checkpoint::recoveries_state(recoveries))
        .with("reconfigs", checkpoint::reconfigs_state(reconfigs))
}

/// Decode a serialized xoshiro256** state (4 words).
fn rng_words_from_state(state: &State) -> Result<[u64; 4], SessionError> {
    let list = state
        .as_list()
        .ok_or_else(|| SessionError::Checkpoint("jitter_rng state is not a list".into()))?;
    if list.len() != 4 {
        return Err(SessionError::Checkpoint(format!(
            "jitter_rng state expects 4 words, found {}",
            list.len()
        )));
    }
    let mut words = [0u64; 4];
    for (w, s) in words.iter_mut().zip(list) {
        *w = s
            .as_u64()
            .ok_or_else(|| SessionError::Checkpoint("jitter_rng word is not a u64".into()))?;
    }
    Ok(words)
}

/// Evaluate one proposal, retrying invalid samples and re-measuring
/// noise-spiked ones. Returns the final outcome and whether it is valid.
#[allow(clippy::too_many_arguments)]
fn evaluate_with_retries(
    cfg: &SessionConfig,
    settings: &ResilienceSettings,
    config: &ClusterConfig,
    key: &str,
    iteration: u32,
    wf: Option<&WindowFaults>,
    jitter_rng: &mut SimRng,
    observer: &mut SessionObserver,
    recoveries: &mut Vec<RecoveryAction>,
) -> (IterationOutcome, bool) {
    let mut out = cfg.evaluate_observed(config.clone(), iteration, observer.registry());

    // A crash inside the measurement phase invalidates the sample (the
    // paper's fixed-interval measurement assumes a stable cluster).
    let crashed_mid_measure = wf
        .map(|w| {
            w.crash_in(cfg.plan.warmup, cfg.plan.warmup + cfg.plan.measure)
                .is_some()
        })
        .unwrap_or(false);
    let mut valid = !crashed_mid_measure && out.metrics.wips > 0.0;

    // Noise-spike re-measurement: the sample passes only if measured WIPS
    // is consistent with its own completion count.
    if valid {
        if let Some(w) = wf.filter(|w| w.noise > 1.0) {
            let measure_secs = cfg.plan.measure.as_secs_f64();
            if measure_secs > 0.0 {
                let (start, _) = FaultClock::window_of(cfg.plan.total(), iteration);
                let mut remeasures = 0;
                while remeasures < settings.gate.max_remeasures {
                    let predicted = out.metrics.completed as f64 / measure_secs;
                    let deviation = (out.metrics.wips - predicted).abs();
                    if settings.gate.accepts(predicted, deviation) {
                        break;
                    }
                    remeasures += 1;
                    observer.record_recovery(
                        iteration,
                        "remeasure",
                        remeasures,
                        0.0,
                        key,
                        out.metrics.wips,
                    );
                    if let Some(reg) = observer.registry() {
                        reg.counter("resilience.remeasures").inc();
                    }
                    recoveries.push(RecoveryAction {
                        iteration,
                        action: "remeasure",
                        attempt: remeasures,
                        delay_s: 0.0,
                        wips: out.metrics.wips,
                    });
                    // Re-run the window and draw the next noise value (a
                    // re-measurement happens at a later session time).
                    let retry_cfg = cfg
                        .clone()
                        .base_seed(cfg.base_seed ^ remeasure_salt(remeasures));
                    out = retry_cfg.eval.run(
                        &retry_cfg.scenario(config.clone(), iteration),
                        observer.registry(),
                    );
                    if let Some(plan) = cfg.fault_plan.as_ref() {
                        let injector = FaultInjector::new(plan, cfg.fault_seed);
                        let shifted = start + SimDuration::from_micros(remeasures as u64);
                        let factor = injector.wips_noise(shifted, w.noise);
                        out.metrics.wips *= factor;
                        for lw in &mut out.line_wips {
                            *lw *= factor;
                        }
                    }
                }
                valid = out.metrics.wips > 0.0;
            }
        }
    }

    // Bounded retry with backoff: the retry sees the post-crash steady
    // state, like a real re-measurement scheduled after the failure.
    let mut attempt = 1;
    while !valid && settings.retry.allows(attempt + 1) {
        let delay = settings.retry.delay(attempt, jitter_rng);
        attempt += 1;
        observer.record_recovery(
            iteration,
            "retry",
            attempt,
            delay.as_secs_f64(),
            key,
            out.metrics.wips,
        );
        if let Some(reg) = observer.registry() {
            reg.counter("resilience.retries").inc();
        }
        recoveries.push(RecoveryAction {
            iteration,
            action: "retry",
            attempt,
            delay_s: delay.as_secs_f64(),
            wips: out.metrics.wips,
        });
        let retry_cfg = cfg
            .clone()
            .base_seed(cfg.base_seed ^ remeasure_salt(attempt));
        let mut scenario = retry_cfg.scenario(config.clone(), iteration);
        scenario.faults = steady_state_timeline(cfg, iteration);
        out = cfg.eval.run(&scenario, observer.registry());
        valid = out.metrics.wips > 0.0;
    }
    (out, valid)
}

/// Decorrelate retry/re-measurement seeds from the primary sample.
fn remeasure_salt(attempt: u32) -> u64 {
    (attempt as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Node healths once every fault up to the end of iteration `i`'s window
/// has applied — what a re-measurement after the crash would see.
fn steady_state_timeline(cfg: &SessionConfig, iteration: u32) -> Option<HealthTimeline> {
    let plan = cfg.fault_plan.as_ref()?;
    let injector = FaultInjector::new(plan, cfg.fault_seed);
    let (_, end) = FaultClock::window_of(cfg.plan.total(), iteration);
    let timeline = HealthTimeline {
        initial: injector.health_at(end, cfg.topology.len()),
        changes: Vec::new(),
    };
    (!timeline.is_trivial()).then_some(timeline)
}

/// Pick a node move that backfills a tier wounded by a crash. Tries the
/// §IV `decide()` algorithm over the live nodes first; if the cost model
/// declines, pulls a spare from the best-staffed other tier directly.
fn heal_after_crash(
    cfg: &SessionConfig,
    settings: &ResilienceSettings,
    topology: &Topology,
    crashed: &[usize],
    iteration: u32,
    out: &IterationOutcome,
    observer: &mut SessionObserver,
) -> Option<ReconfigEvent> {
    let (_, end) = FaultClock::window_of(cfg.plan.total(), iteration);
    let healths: Vec<Health> = cfg
        .fault_plan
        .as_ref()
        .map(|p| FaultInjector::new(p, cfg.fault_seed).health_at(end, topology.len()))
        .unwrap_or_else(|| vec![Health::Up; topology.len()]);
    let wounded_tier = topology.role(*crashed.first()?);
    let live = |n: usize| !healths.get(n).map(Health::is_down).unwrap_or(false);
    let live_count = |t: Role| {
        (0..topology.len())
            .filter(|&n| topology.role(n) == t && live(n))
            .count()
    };

    // §IV decide() over the live nodes, with tier sizes that reflect the
    // crash (the wounded tier really is smaller now).
    let reports: Vec<NodeReport<Role>> = (0..topology.len())
        .filter(|&n| live(n))
        .map(|n| {
            let u = &out.node_utilization[n];
            NodeReport {
                node: n,
                tier: topology.role(n),
                util: UtilizationSnapshot {
                    cpu: u.cpu,
                    disk: u.disk,
                    net: u.net,
                    mem: u.mem,
                },
                cost: NodeCostInputs {
                    jobs: 2.0 + 30.0 * u.cpu.max(u.disk),
                    move_cost: 0.2,
                    avg_process_time: 0.8,
                },
            }
        })
        .collect();
    let decision = decide(
        &reports,
        &settings.thresholds,
        &settings.cost_model,
        live_count,
    );
    let (node, to_tier, immediate, cost_value) = match decision {
        Some(d) if d.to_tier == wounded_tier => (d.node, d.to_tier, d.immediate, d.cost_value),
        _ => {
            // Direct spare-pull: the idlest live node outside the wounded
            // tier, from a tier that can spare one.
            let peak = |n: usize| {
                let u = &out.node_utilization[n];
                u.cpu.max(u.disk).max(u.net)
            };
            let donor = (0..topology.len())
                .filter(|&n| {
                    let t = topology.role(n);
                    t != wounded_tier && live(n) && live_count(t) > 1
                })
                .min_by(|&a, &b| peak(a).total_cmp(&peak(b)).then(a.cmp(&b)))?;
            (donor, wounded_tier, true, 0.0)
        }
    };
    let from_tier = topology.role(node);
    observer.record_reconfig(
        iteration,
        node,
        from_tier.name(),
        to_tier.name(),
        immediate,
        cost_value,
    );
    observer.record_recovery(iteration, "reconfig", 0, 0.0, &format!("node {node}"), 0.0);
    if let Some(reg) = observer.registry() {
        reg.counter("resilience.reconfigs").inc();
    }
    Some(ReconfigEvent {
        iteration,
        node,
        from_tier,
        to_tier,
        immediate,
        cost_value,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use faults::FaultPlan;
    use tpcw::metrics::IntervalPlan;
    use tpcw::mix::Workload;

    fn base(topology: Topology, pop: u32) -> SessionConfig {
        SessionConfig::new(topology, Workload::Shopping, pop).plan(IntervalPlan::tiny())
    }

    #[test]
    fn fault_free_resilient_session_behaves_like_tuning() {
        let cfg = base(Topology::tiers(1, 2, 1).unwrap(), 300).pin_seed(true);
        let run = run_resilient_session(&cfg, &ResilienceSettings::default(), 4).expect("run");
        assert_eq!(run.records.len(), 4);
        assert!(run.faults.is_empty());
        assert!(run.recoveries.is_empty());
        assert!(run.reconfigs.is_empty());
        assert!(run.best_wips > 0.0);
    }

    #[test]
    fn invalid_plan_is_reported_not_panicked() {
        let cfg = base(Topology::single(), 200).fault_plan(FaultPlan::new().crash(1.0, 99));
        let err = run_resilient_session(&cfg, &ResilienceSettings::default(), 2).unwrap_err();
        assert!(matches!(err, SessionError::FaultPlan(_)), "{err:?}");
    }

    #[test]
    fn crash_mid_measurement_triggers_retries() {
        // tiny plan: 5s warmup, 20s measure. Crash the only app node of
        // line 2 early in iteration 1's measurement phase.
        let total = IntervalPlan::tiny().total().as_secs_f64();
        let crash_at = total + 7.0;
        let cfg = base(Topology::tiers(1, 2, 1).unwrap(), 300)
            .pin_seed(true)
            .fault_plan(FaultPlan::new().crash(crash_at, 1));
        let run = run_resilient_session(&cfg, &ResilienceSettings::default(), 3).expect("run");
        assert_eq!(run.first_crash_iteration(), Some(1));
        assert!(
            run.recoveries.iter().any(|r| r.action == "retry"),
            "expected a retry: {:?}",
            run.recoveries
        );
        // The retry saw the post-crash steady state (node 1 down, node 2
        // still serving), so the session kept a usable sample.
        assert!(run.records[1].wips > 0.0, "retried sample is usable");
    }

    #[test]
    fn total_blackout_opens_the_breaker() {
        // The only proxy node crashes before iteration 0's window ends
        // and never restarts: every evaluation measures zero.
        let cfg = base(Topology::tiers(1, 1, 1).unwrap(), 150)
            .pin_seed(true)
            .fault_plan(FaultPlan::new().crash(0.5, 0));
        let settings = ResilienceSettings {
            breaker_threshold: 1,
            ..Default::default()
        };
        let run = run_resilient_session(&cfg, &settings, 3).expect("run");
        assert!(run.records.iter().all(|r| r.wips == 0.0));
        assert!(
            run.recoveries.iter().any(|r| r.action == "breaker_open"),
            "{:?}",
            run.recoveries
        );
        assert_eq!(run.best_wips, 0.0);
    }

    #[test]
    fn crash_pulls_a_spare_into_the_wounded_tier() {
        let total = IntervalPlan::tiny().total().as_secs_f64();
        // Node 2 (app tier) crashes during iteration 1.
        let cfg = base(Topology::tiers(2, 2, 2).unwrap(), 400)
            .pin_seed(true)
            .fault_plan(FaultPlan::new().crash(total + 2.0, 2));
        let run = run_resilient_session(&cfg, &ResilienceSettings::default(), 4).expect("run");
        assert_eq!(run.reconfigs.len(), 1, "{:?}", run.reconfigs);
        let e = &run.reconfigs[0];
        assert_eq!(e.to_tier, Role::App);
        assert_ne!(e.node, 2, "the dead node cannot be the donor");
        assert_eq!(run.final_topology.count(Role::App), 3);
    }
}
